"""Abstract shape/layout interpretation over the graph IR.

The pass pipeline annotates every node with shapes, a layout, and the
edge transforms that reconcile disagreeing layouts.  These checks *prove*
the annotations consistent by abstract interpretation: a forward dataflow
propagates the layout each producer actually delivers (carried through
classifiers the same way ``core.pipeline._insert_transforms`` carries it),
and every node's annotations are compared against the facts arriving on
its real edges.  The L-rules from PR 3 pattern-matched the linear step
list; these checks generalize them to arbitrary DAGs and are shared by the
``D0xx`` lint rules, :func:`~repro.analysis.dataflow.verify.verify_graph`,
and the pass-contract verifier.

Check functions return :class:`~repro.analysis.rules.base.Finding` records
(the rule registry stamps IDs/severities onto them) and never raise on
malformed graphs — a verifier that crashes on the graphs it exists to
reject is useless.
"""

from __future__ import annotations

from typing import Iterator

from ...ir.graph import Dims, Graph, GraphNode, NodeKind
from ...layers.base import ConvSpec, FCSpec, PoolSpec
from ...tensors.layout import DataLayout
from ..rules.base import Finding
from .framework import DataflowAnalysis, DataflowResult, run_analysis

#: lattice top/conflict sentinel for the layout domain
CONFLICT = DataLayout.__new__(DataLayout)
object.__setattr__(CONFLICT, "order", "????")

LayoutFact = DataLayout | None  # None = unknown / not yet assigned


class LayoutPropagation(DataflowAnalysis[LayoutFact]):
    """Forward analysis: the effective storage layout each node delivers.

    Classifier nodes flatten the data and never change the carried
    layout; every other node delivers its assigned ``layout``.  An edge
    transform rewrites the fact on that edge alone.  Facts that disagree
    at a join become :data:`CONFLICT`.
    """

    name = "layout-propagation"
    direction = "forward"

    def boundary(self, graph: Graph) -> LayoutFact:
        return None

    def join(self, a: LayoutFact, b: LayoutFact) -> LayoutFact:
        if a is None:
            return b
        if b is None or a == b:
            return a
        return CONFLICT

    def transfer(self, graph: Graph, node: GraphNode, fact: LayoutFact) -> LayoutFact:
        if node.kind is NodeKind.CLASSIFIER:
            return fact
        return node.layout if node.layout is not None else fact

    def edge_transfer(
        self, graph: Graph, producer: GraphNode, consumer: GraphNode, fact: LayoutFact
    ) -> LayoutFact:
        for t in consumer.transforms:
            if t.src == producer.name:
                return t.to_layout
        return fact


def propagate_layouts(graph: Graph) -> DataflowResult[LayoutFact]:
    """Run the layout propagation to fixpoint."""
    return run_analysis(graph, LayoutPropagation())


def _arriving_layout(
    result: DataflowResult[LayoutFact], producer: GraphNode, consumer: GraphNode
) -> LayoutFact:
    """Layout delivered on one edge: producer's effective out fact, after
    the edge's transform (if any)."""
    return result.fact_on_edge(producer.name, consumer.name)


# ---------------------------------------------------------------------------
# structural checks (no dataflow needed, but every analysis assumes them)
# ---------------------------------------------------------------------------


def check_structure(graph: Graph) -> Iterator[Finding]:
    """Dangling edges and malformed annotations.

    ``Graph.add`` enforces these at construction, but passes mutate nodes
    in place and serialized graphs can be edited — the verifier re-proves
    them instead of trusting them.  Schedule-order violations and
    duplicate edges are liveness hazards and live in
    :mod:`~repro.analysis.dataflow.liveness` (D006/D007).
    """
    for node in graph.topological():
        for src in node.inputs:
            if src not in graph.nodes:
                yield Finding(
                    node.name,
                    f"input edge references {src!r}, which is not a node in "
                    f"the graph",
                    {"edge": src, "kind": "dangling"},
                )
        if node.kind is NodeKind.CONCAT and len(node.inputs) < 2:
            yield Finding(
                node.name,
                f"concat has {len(node.inputs)} input(s); needs at least two",
                {"kind": "arity", "inputs": list(node.inputs)},
            )
        for t in node.transforms:
            if t.src not in node.inputs and not (t.src == "" and not node.inputs):
                yield Finding(
                    node.name,
                    f"transform annotation names source {t.src!r}, which is "
                    f"not one of the node's inputs {list(node.inputs)}",
                    {"edge": t.src, "kind": "transform-dangling"},
                )


def _structurally_sound(graph: Graph) -> bool:
    return next(iter(check_structure(graph)), None) is None


# ---------------------------------------------------------------------------
# abstract shape interpretation
# ---------------------------------------------------------------------------


def _expected_out_dims(node: GraphNode) -> Dims | None:
    """Output dims implied by the node's spec, when computable."""
    spec = node.spec
    if node.kind is NodeKind.CONV and isinstance(spec, ConvSpec):
        return (spec.n, spec.co, spec.out_h, spec.out_w)
    if node.kind is NodeKind.POOL and isinstance(spec, PoolSpec):
        return (spec.n, spec.c, spec.out_h, spec.out_w)
    return None


def _spec_in_dims(node: GraphNode) -> Dims | None:
    """Input dims implied by the node's spec, when computable."""
    spec = node.spec
    if node.kind is NodeKind.CONV and isinstance(spec, ConvSpec):
        return (spec.n, spec.ci, spec.h, spec.w)
    if node.kind is NodeKind.POOL and isinstance(spec, PoolSpec):
        return (spec.n, spec.c, spec.h, spec.w)
    return None


def check_shapes(graph: Graph) -> Iterator[Finding]:
    """Shape facts along every edge must agree with the node annotations.

    Propagates the producers' ``out_dims`` facts and compares them with
    each consumer's ``in_dims``/spec geometry; concat is the join point
    (same N/H/W, channels sum).  Nothing is reported for edges whose
    facts are still unresolved — unresolved is not inconsistent.
    """
    if not _structurally_sound(graph):
        return  # structural findings already explain everything downstream
    for node in graph.topological():
        producers = [graph[s] for s in node.inputs]
        spec_in = _spec_in_dims(node)
        if spec_in is not None and node.in_dims is not None and spec_in != node.in_dims:
            yield Finding(
                node.name,
                f"spec expects input dims {spec_in} but the node is "
                f"annotated with in_dims {node.in_dims}",
                {"spec": list(spec_in), "annotated": list(node.in_dims)},
            )
        spec_out = _expected_out_dims(node)
        if (
            spec_out is not None
            and node.out_dims is not None
            and spec_out != node.out_dims
        ):
            yield Finding(
                node.name,
                f"spec produces dims {spec_out} but the node is annotated "
                f"with out_dims {node.out_dims}",
                {"spec": list(spec_out), "annotated": list(node.out_dims)},
            )
        if node.kind is NodeKind.CONCAT:
            shapes = [p.out_dims for p in producers]
            known = [s for s in shapes if s is not None]
            if not known:
                continue
            base = known[0]
            for producer, dims in zip(producers, shapes):
                if dims is None:
                    continue
                if (dims[0], dims[2], dims[3]) != (base[0], base[2], base[3]):
                    yield Finding(
                        node.name,
                        f"concat input {producer.name!r} delivers "
                        f"{dims[0]}x{dims[2]}x{dims[3]} (NxHxW), expected "
                        f"{base[0]}x{base[2]}x{base[3]}",
                        {"edge": producer.name, "dims": list(dims)},
                    )
            if len(known) == len(shapes) and node.out_dims is not None:
                joined = (base[0], sum(s[1] for s in known), base[2], base[3])
                if joined != node.out_dims:
                    yield Finding(
                        node.name,
                        f"concat inputs join to {joined} but the node is "
                        f"annotated with out_dims {node.out_dims}",
                        {"joined": list(joined), "annotated": list(node.out_dims)},
                    )
            continue
        if node.kind is NodeKind.CLASSIFIER:
            if isinstance(node.spec, FCSpec) and producers:
                dims = producers[0].out_dims
                if dims is not None:
                    features = dims[1] * dims[2] * dims[3]
                    if features != node.spec.in_features:
                        yield Finding(
                            node.name,
                            f"FC expects {node.spec.in_features} input "
                            f"features but producer {producers[0].name!r} "
                            f"delivers {features}",
                            {
                                "edge": producers[0].name,
                                "expected": node.spec.in_features,
                                "delivered": features,
                            },
                        )
            continue
        # conv / pool / elementwise: a single 4-D input edge
        arriving: Dims | None
        if producers:
            arriving = producers[0].out_dims
            edge = producers[0].name
        else:
            arriving = graph.in_dims if any(graph.in_dims) else None
            edge = ""
        if arriving is not None and node.in_dims is not None and arriving != node.in_dims:
            yield Finding(
                node.name,
                f"input from {edge or 'the network input'} delivers dims "
                f"{arriving} but the node expects in_dims {node.in_dims}",
                {"edge": edge, "delivered": list(arriving), "expected": list(node.in_dims)},
            )


# ---------------------------------------------------------------------------
# layout coherence
# ---------------------------------------------------------------------------


def check_layout_coherence(graph: Graph) -> Iterator[Finding]:
    """Every consumed layout must be produced: the layout arriving on each
    edge (after its transform, if any) must equal the consumer's layout."""
    if not _structurally_sound(graph):
        return
    result = propagate_layouts(graph)
    for node in graph.topological():
        if node.kind is NodeKind.CLASSIFIER or node.layout is None:
            continue  # flattened data / unassigned: nothing to check yet
        for producer in graph.producers(node.name):
            arriving = _arriving_layout(result, producer, node)
            if arriving is None:
                continue
            if arriving is CONFLICT:
                yield Finding(
                    node.name,
                    f"input from {producer.name!r} arrives with conflicting "
                    f"layout facts (its own producers disagree)",
                    {"edge": producer.name},
                )
            elif arriving != node.layout:
                yield Finding(
                    node.name,
                    f"input from {producer.name!r} arrives in {arriving} but "
                    f"the node runs in {node.layout} with no transform on "
                    f"the edge",
                    {
                        "edge": producer.name,
                        "arriving": str(arriving),
                        "consumer": str(node.layout),
                    },
                )


def check_transform_annotations(graph: Graph) -> Iterator[Finding]:
    """Each edge transform's endpoints must match the dataflow facts: its
    source layout is what the producer actually delivers, its target is
    what the consumer runs in."""
    if not _structurally_sound(graph):
        return
    result = propagate_layouts(graph)
    for node in graph.topological():
        for t in node.transforms:
            if t.src not in graph.nodes:
                continue  # structural check reports dangling sources
            delivered = result.out_facts.get(t.src)
            if (
                delivered is not None
                and delivered is not CONFLICT
                and delivered != t.from_layout
            ):
                yield Finding(
                    node.name,
                    f"transform on the edge from {t.src!r} reads "
                    f"{t.from_layout} but the producer delivers {delivered}",
                    {
                        "edge": t.src,
                        "transform_source": str(t.from_layout),
                        "producer": str(delivered),
                    },
                )
            if (
                node.layout is not None
                and node.kind is not NodeKind.CLASSIFIER
                and t.to_layout != node.layout
            ):
                yield Finding(
                    node.name,
                    f"transform on the edge from {t.src!r} produces "
                    f"{t.to_layout} but the node runs in {node.layout}",
                    {
                        "edge": t.src,
                        "transform_target": str(t.to_layout),
                        "consumer": str(node.layout),
                    },
                )
            if t.from_layout == t.to_layout:
                yield Finding(
                    node.name,
                    f"transform on the edge from {t.src!r} is the identity "
                    f"({t.from_layout} -> {t.to_layout})",
                    {"edge": t.src, "layout": str(t.from_layout)},
                )


# ---------------------------------------------------------------------------
# uneliminated transform-inverse pairs
# ---------------------------------------------------------------------------


def check_inverse_pairs(graph: Graph) -> Iterator[Finding]:
    """A layout-agnostic node whose relabeling would cancel *all* of its
    incident layout disagreements hosts an uneliminated transform-inverse
    pair: ``EliminateRedundantTransforms`` should have relabeled it (the
    relabel removes transforms and adds none, a strict win)."""
    if not _structurally_sound(graph):
        return
    result = propagate_layouts(graph)
    consumers: dict[str, list[GraphNode]] = {name: [] for name in graph.nodes}
    for node in graph:
        for src in node.inputs:
            consumers[src].append(node)

    for node in graph.topological():
        if not node.kind.layout_agnostic or node.layout is None:
            continue

        def mismatches(candidate: DataLayout) -> int:
            count = 0
            for producer in graph.producers(node.name):
                delivered = result.out_facts.get(producer.name)
                if delivered is None or delivered is CONFLICT:
                    continue
                if delivered != candidate:
                    count += 1
            for consumer in consumers[node.name]:
                if consumer.kind is NodeKind.CLASSIFIER or consumer.layout is None:
                    continue
                if consumer.layout != candidate:
                    count += 1
            return count

        current = mismatches(node.layout)
        if current == 0:
            continue
        candidates: set[DataLayout] = set()
        for producer in graph.producers(node.name):
            delivered = result.out_facts.get(producer.name)
            if delivered is not None and delivered is not CONFLICT:
                candidates.add(delivered)
        for consumer in consumers[node.name]:
            if consumer.kind is not NodeKind.CLASSIFIER and consumer.layout is not None:
                candidates.add(consumer.layout)
        for candidate in sorted(candidates, key=str):
            if candidate != node.layout and mismatches(candidate) == 0:
                yield Finding(
                    node.name,
                    f"layout-agnostic node labeled {node.layout} sits between "
                    f"{candidate} neighbours on every side; relabeling it to "
                    f"{candidate} cancels the transform-inverse pair at zero "
                    f"cost",
                    {
                        "current": str(node.layout),
                        "candidate": str(candidate),
                        "mismatched_edges": current,
                    },
                )
                break
