"""Dataflow verification layer over the network-graph IR.

A generic worklist framework (:mod:`.framework`) and three analyses built
on it: abstract shape/layout interpretation (:mod:`.interp`), buffer
liveness with the interval-based peak-memory model (:mod:`.liveness`),
and the pass-contract invariants (:mod:`.contracts`).  :mod:`.verify`
exposes them as :func:`verify_graph` / :func:`verify_network`, surfaced
on the CLI as ``repro verify`` and as the ``D0xx`` rules of
``repro lint``.
"""

from .contracts import (
    CONTRACTS,
    Contract,
    ContractViolation,
    check_contracts,
    contract,
)
from .framework import (
    ConvergenceError,
    DataflowAnalysis,
    DataflowResult,
    run_analysis,
)
from .interp import (
    CONFLICT,
    LayoutPropagation,
    check_inverse_pairs,
    check_layout_coherence,
    check_shapes,
    check_structure,
    check_transform_annotations,
    propagate_layouts,
)
from .liveness import (
    BufferInterval,
    LivenessAnalysis,
    LivenessFootprint,
    buffer_intervals,
    check_double_counts,
    check_liveness,
    liveness_footprint,
)
from .verify import verify_graph, verify_network

__all__ = [
    "CONFLICT",
    "CONTRACTS",
    "BufferInterval",
    "Contract",
    "ContractViolation",
    "ConvergenceError",
    "DataflowAnalysis",
    "DataflowResult",
    "LayoutPropagation",
    "LivenessAnalysis",
    "LivenessFootprint",
    "buffer_intervals",
    "check_contracts",
    "check_double_counts",
    "check_inverse_pairs",
    "check_layout_coherence",
    "check_liveness",
    "check_shapes",
    "check_structure",
    "check_transform_annotations",
    "contract",
    "liveness_footprint",
    "propagate_layouts",
    "run_analysis",
    "verify_graph",
    "verify_network",
]
