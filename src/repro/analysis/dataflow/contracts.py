"""Pass contracts: named invariants a pipeline pass promises its output.

Each :class:`repro.core.pipeline.Pass` declares which invariants hold on
the graph it returns (``Pass.contracts``).  With verification enabled the
:class:`~repro.core.pipeline.PassManager` runs the declared checks after
every pass and attributes the *first* violation to the offending pass by
name — turning "the pipeline's output lints clean" into "every
intermediate graph is provably consistent, and a bug is pinned to the
pass that introduced it".

Contracts are registered by name so passes (including third-party ones
added around :func:`repro.core.pipeline.default_passes`) can declare any
subset.  The checks reuse the same dataflow analyses as the D-rules; a
contract violation is a verification failure, so severity is uniform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ...ir.graph import Graph
from ..rules.base import Finding
from .interp import (
    check_inverse_pairs,
    check_layout_coherence,
    check_shapes,
    check_structure,
    check_transform_annotations,
)
from .liveness import check_double_counts, check_liveness

CheckFn = Callable[[Graph], Iterable[Finding]]


@dataclass(frozen=True)
class Contract:
    """One named invariant: what it promises and how to check it."""

    name: str
    description: str
    check: CheckFn


CONTRACTS: dict[str, Contract] = {}


def contract(name: str, description: str) -> Callable[[CheckFn], CheckFn]:
    """Register an invariant check under a stable contract name."""
    if name in CONTRACTS:
        raise ValueError(f"duplicate contract {name!r}")

    def decorate(fn: CheckFn) -> CheckFn:
        CONTRACTS[name] = Contract(name=name, description=description, check=fn)
        return fn

    return decorate


@contract(
    "structure",
    "no dangling edges, malformed transforms, degenerate concats, "
    "schedule-order violations, or duplicate edges",
)
def _structure(graph: Graph) -> Iterator[Finding]:
    yield from check_structure(graph)
    yield from check_liveness(graph)
    yield from check_double_counts(graph)


@contract(
    "shapes",
    "every edge's shape fact matches its consumer's annotations "
    "(shapes are preserved by the pass)",
)
def _shapes(graph: Graph) -> Iterator[Finding]:
    yield from check_shapes(graph)


@contract(
    "layouts-assigned",
    "every layout-bearing (conv/pool) node carries a storage layout",
)
def _layouts_assigned(graph: Graph) -> Iterator[Finding]:
    for node in graph.topological():
        if node.kind.layout_bearing and node.layout is None:
            yield Finding(
                node.name,
                f"{node.kind.value} node has no layout after assignment",
                {"kind": node.kind.value},
            )


@contract(
    "layout-coherent",
    "every consumed layout is produced: each edge's arriving layout "
    "(after its transform) equals the consumer's layout, and every "
    "transform annotation matches the dataflow facts",
)
def _layout_coherent(graph: Graph) -> Iterator[Finding]:
    yield from check_layout_coherence(graph)
    yield from check_transform_annotations(graph)


@contract(
    "no-inverse-pairs",
    "no layout-agnostic node hosts a transform-inverse pair that "
    "relabeling would cancel at zero cost",
)
def _no_inverse_pairs(graph: Graph) -> Iterator[Finding]:
    yield from check_inverse_pairs(graph)


@dataclass(frozen=True)
class ContractViolation:
    """One broken invariant, attributed to the pass that emitted the graph."""

    pass_name: str
    contract: str
    subject: str
    message: str

    def format(self) -> str:
        return (
            f"pass {self.pass_name!r} broke contract {self.contract!r} "
            f"at {self.subject}: {self.message}"
        )


def check_contracts(
    graph: Graph, names: Iterable[str], pass_name: str = ""
) -> list[ContractViolation]:
    """Run the named contracts over one graph; unknown names raise."""
    violations: list[ContractViolation] = []
    for name in names:
        if name not in CONTRACTS:
            raise ValueError(
                f"unknown contract {name!r}; registered: {sorted(CONTRACTS)}"
            )
        for finding in CONTRACTS[name].check(graph):
            violations.append(
                ContractViolation(
                    pass_name=pass_name,
                    contract=name,
                    subject=finding.subject,
                    message=finding.message,
                )
            )
    return violations
