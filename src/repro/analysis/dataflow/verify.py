"""Graph verification entry points: ``verify_graph`` and ``repro verify``.

:func:`verify_graph` runs every D-rule (the dataflow analyses) over one
annotated graph and returns the diagnostics — the programmatic API the
pipeline, tests, and tooling share.  :func:`verify_network` is the CLI's
whole-network path: plan through the pass pipeline *with pass-contract
verification enabled*, verify the final graph, and attach the
liveness-based footprint, so one command answers "is this network's plan
provably consistent and what does it really peak at?".
"""

from __future__ import annotations

from ...framework.netdef import NetworkDef
from ...gpusim.device import DeviceSpec
from ...gpusim.session import SimulationContext
from ...ir.graph import Graph
from ..lint import DEFAULT_CONFIG, LintConfig, LintReport, _run_scope
from ..rules import GraphScope
from .liveness import LivenessFootprint, liveness_footprint

from ..rules.base import Diagnostic


def verify_graph(
    graph: Graph,
    device: DeviceSpec | None = None,
    config: LintConfig = DEFAULT_CONFIG,
    network: str = "",
) -> list[Diagnostic]:
    """Run the D0xx dataflow rules over one annotated graph."""
    return _run_scope(
        "graph",
        GraphScope(graph=graph, device=device),
        config,
        network=network or graph.name,
    )


def verify_network(
    device: DeviceSpec,
    netdef: NetworkDef,
    strategy: str = "optimal",
    config: LintConfig = DEFAULT_CONFIG,
    context: SimulationContext | None = None,
    training: bool = False,
) -> tuple[LintReport, LivenessFootprint]:
    """Plan one network with pass-contract verification on, then verify
    the final graph and compute its liveness footprint.

    A :class:`~repro.core.pipeline.PassContractError` from the pipeline
    propagates — a broken pass is a bug to attribute, not a diagnostic to
    collect.
    """
    from ...core.pipeline import PipelineOptions, plan_network

    options = PipelineOptions(
        strategy="heuristic" if strategy == "heuristic" else "optimal",
        verify=True,
    )
    result = plan_network(device, netdef, options, context=context)
    report = LintReport(
        target=netdef.name, device=device.name, strategy=strategy
    )
    report.plan = result.plan
    report.diagnostics = verify_graph(
        result.graph, device, config, network=netdef.name
    )
    return report, liveness_footprint(result.graph, training=training)
