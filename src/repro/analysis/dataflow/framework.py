"""Generic worklist dataflow over the network-graph IR.

The verification layer needs several whole-graph analyses — layout
propagation, abstract shape interpretation, buffer liveness — and all of
them are instances of the same fixpoint schema compilers use: facts on
nodes, a join at control-flow merges, a transfer function per node, and a
worklist that re-propagates until nothing changes.  This module is that
schema, specialized to :class:`repro.ir.Graph`:

* a **forward** analysis pushes facts along producer→consumer edges
  (shape/layout interpretation: "what arrives at this node?");
* a **backward** analysis pushes facts against them (liveness: "who still
  needs this buffer?");
* an optional **edge transfer** refines the fact on one specific edge
  before it joins into the consumer — that is where per-edge annotations
  (an :class:`~repro.ir.graph.EdgeTransform`) act on the fact stream.

Graphs built through :meth:`repro.ir.Graph.add` are DAGs, so one
topological sweep converges; the worklist plus an explicit convergence
guard keeps the framework sound on *corrupted* graphs too (forward
references, dangling edges), which is exactly when a verifier must not
hang or crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

from ...ir.graph import Graph, GraphNode

F = TypeVar("F")


class ConvergenceError(RuntimeError):
    """The fixpoint iteration exceeded its visit budget.

    On a well-formed DAG the worklist drains in one sweep; hitting the
    guard means the graph (or an analysis transfer function) is not
    monotone — report it instead of spinning.
    """


class DataflowAnalysis(Generic[F]):
    """One analysis: direction, lattice operations, transfer functions.

    Subclasses define the fact type ``F`` and override:

    * :meth:`boundary` — the fact entering the graph (forward: what the
      network input provides; backward: what is demanded after the last
      node);
    * :meth:`join` — the lattice join merging facts arriving over
      several edges;
    * :meth:`transfer` — one node's effect on the fact;
    * :meth:`edge_transfer` — optionally, one edge's effect (default:
      identity), applied to the producer-side fact before the join.
    """

    name = "dataflow"
    #: "forward" propagates producer→consumer; "backward" the reverse.
    direction = "forward"

    def boundary(self, graph: Graph) -> F:
        raise NotImplementedError

    def join(self, a: F, b: F) -> F:
        raise NotImplementedError

    def transfer(self, graph: Graph, node: GraphNode, fact: F) -> F:
        raise NotImplementedError

    def edge_transfer(
        self, graph: Graph, producer: GraphNode, consumer: GraphNode, fact: F
    ) -> F:
        return fact

    def equals(self, a: F, b: F) -> bool:
        return a == b


@dataclass
class DataflowResult(Generic[F]):
    """Fixpoint facts for every node, plus convergence bookkeeping.

    ``in_facts``/``out_facts`` are keyed by node name and oriented along
    the analysis direction: for a backward analysis the "in" fact is what
    holds *after* the node in execution order.
    """

    analysis: DataflowAnalysis[F]
    graph: Graph
    in_facts: dict[str, F] = field(default_factory=dict)
    out_facts: dict[str, F] = field(default_factory=dict)
    iterations: int = 0

    def fact_on_edge(self, src: str | None, dst: str) -> F:
        """The fact flowing along one producer→consumer edge (forward
        orientation): the producer's out fact pushed through the edge
        transfer.  ``src=None`` is the network-input edge."""
        graph = self.graph
        if src is None or src not in graph.nodes:
            return self.analysis.boundary(graph)
        fact = self.out_facts[src]
        if dst in graph.nodes:
            fact = self.analysis.edge_transfer(graph, graph[src], graph[dst], fact)
        return fact


def _successors(graph: Graph) -> dict[str, list[str]]:
    succ: dict[str, list[str]] = {name: [] for name in graph.nodes}
    for node in graph:
        for src in node.inputs:
            if src in succ:
                succ[src].append(node.name)
    return succ


def run_analysis(
    graph: Graph,
    analysis: DataflowAnalysis[F],
    max_visits: int | None = None,
) -> DataflowResult[F]:
    """Run one analysis to fixpoint and return the per-node facts.

    ``max_visits`` bounds the total number of node evaluations (default:
    generous for a DAG — each node once per distinct predecessor change
    plus slack); exceeding it raises :class:`ConvergenceError`.
    """
    order = [n.name for n in graph.topological()]
    if analysis.direction == "backward":
        order = order[::-1]
    successors = _successors(graph)
    result = DataflowResult(analysis=analysis, graph=graph)
    budget = max_visits if max_visits is not None else 8 * len(order) + 32

    def dependencies(name: str) -> list[str]:
        node = graph[name]
        if analysis.direction == "forward":
            return [s for s in node.inputs if s in graph.nodes]
        return successors[name]

    def dependents(name: str) -> list[str]:
        if analysis.direction == "forward":
            return successors[name]
        return [s for s in graph[name].inputs if s in graph.nodes]

    worklist: list[str] = list(order)
    queued = set(worklist)
    visits = 0
    while worklist:
        visits += 1
        if visits > budget:
            raise ConvergenceError(
                f"{analysis.name}: no fixpoint after {budget} node visits "
                f"on graph {graph.name!r} ({len(graph)} nodes) — the graph "
                "is cyclic or the transfer function is not monotone"
            )
        name = worklist.pop(0)
        queued.discard(name)
        node = graph[name]
        fact = analysis.boundary(graph)
        merged = False
        for dep in dependencies(name):
            if dep not in result.out_facts:
                continue
            incoming = result.out_facts[dep]
            if analysis.direction == "forward":
                incoming = analysis.edge_transfer(graph, graph[dep], node, incoming)
            else:
                incoming = analysis.edge_transfer(graph, node, graph[dep], incoming)
            fact = analysis.join(fact, incoming) if merged else incoming
            merged = True
        result.in_facts[name] = fact
        out = analysis.transfer(graph, node, fact)
        if name in result.out_facts and analysis.equals(result.out_facts[name], out):
            continue
        result.out_facts[name] = out
        for dep in dependents(name):
            if dep not in queued:
                worklist.append(dep)
                queued.add(dep)
    result.iterations = visits
    return result
