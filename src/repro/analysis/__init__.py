"""Analysis tools: Fig. 4-style sensitivity sweeps, gain attribution, and
the ``repro lint`` static analyzer for netdefs, layout plans, and kernels."""

from .attribution import GainAttribution, attribute_gains
from .lint import (
    DEFAULT_CONFIG,
    LintConfig,
    LintReport,
    UnknownRuleError,
    iter_rules,
    lint_kernel,
    lint_netdef,
    lint_netdef_text,
    lint_network,
    lint_plan,
)
from .rules import REGISTRY, Diagnostic, Finding, Rule, Severity
from .sweeps import (
    SweepPoint,
    SweepResult,
    crossovers,
    sweep_conv,
    sweep_pool,
    sweep_softmax,
)

__all__ = [
    "DEFAULT_CONFIG",
    "Diagnostic",
    "Finding",
    "GainAttribution",
    "LintConfig",
    "LintReport",
    "REGISTRY",
    "Rule",
    "Severity",
    "SweepPoint",
    "SweepResult",
    "UnknownRuleError",
    "attribute_gains",
    "crossovers",
    "iter_rules",
    "lint_kernel",
    "lint_netdef",
    "lint_netdef_text",
    "lint_network",
    "lint_plan",
    "sweep_conv",
    "sweep_pool",
    "sweep_softmax",
]
