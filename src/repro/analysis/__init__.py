"""Sensitivity analysis: generalize the paper's Fig. 4 sweeps to any
dimension and locate implementation crossovers."""

from .attribution import GainAttribution, attribute_gains
from .sweeps import (
    SweepPoint,
    SweepResult,
    crossovers,
    sweep_conv,
    sweep_pool,
    sweep_softmax,
)

__all__ = [
    "GainAttribution",
    "attribute_gains",
    "SweepPoint",
    "SweepResult",
    "crossovers",
    "sweep_conv",
    "sweep_pool",
    "sweep_softmax",
]
