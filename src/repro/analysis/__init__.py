"""Analysis tools: Fig. 4-style sensitivity sweeps, gain attribution, the
``repro lint`` static analyzer for netdefs, layout plans, kernels and
graphs, and the ``repro verify`` dataflow verification layer."""

from .attribution import GainAttribution, attribute_gains
from .dataflow import (
    BufferInterval,
    ContractViolation,
    LivenessFootprint,
    buffer_intervals,
    check_contracts,
    liveness_footprint,
    verify_graph,
    verify_network,
)
from .lint import (
    DEFAULT_CONFIG,
    LintConfig,
    LintReport,
    UnknownRuleError,
    iter_rules,
    lint_graph,
    lint_kernel,
    lint_netdef,
    lint_netdef_text,
    lint_network,
    lint_plan,
)
from .rules import REGISTRY, Diagnostic, Finding, GraphScope, Rule, Severity
from .sweeps import (
    SweepPoint,
    SweepResult,
    crossovers,
    sweep_conv,
    sweep_pool,
    sweep_softmax,
)

__all__ = [
    "BufferInterval",
    "ContractViolation",
    "DEFAULT_CONFIG",
    "Diagnostic",
    "Finding",
    "GainAttribution",
    "GraphScope",
    "LintConfig",
    "LintReport",
    "LivenessFootprint",
    "REGISTRY",
    "Rule",
    "Severity",
    "SweepPoint",
    "SweepResult",
    "UnknownRuleError",
    "attribute_gains",
    "buffer_intervals",
    "check_contracts",
    "crossovers",
    "iter_rules",
    "lint_graph",
    "lint_kernel",
    "lint_netdef",
    "lint_netdef_text",
    "lint_network",
    "lint_plan",
    "liveness_footprint",
    "sweep_conv",
    "sweep_pool",
    "sweep_softmax",
    "verify_graph",
    "verify_network",
]
