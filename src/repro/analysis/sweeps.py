"""Sensitivity-analysis toolkit: sweep any layer dimension, any metric.

The paper's Fig. 4 is one instance of a general method — fix a layer shape,
vary one dimension, watch the implementations trade places.  This module
makes that method a first-class tool: :func:`sweep_conv` /
:func:`sweep_pool` / :func:`sweep_softmax` produce tidy result grids for
any dimension, and :func:`crossovers` locates where the winner changes
(the raw material for thresholds like Ct and Nt).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..gpusim.batch import batched_eval_enabled
from ..gpusim.device import DeviceSpec
from ..gpusim.engine import GpuOutOfMemoryError
from ..gpusim.exec import evaluate_cells, map_chunks
from ..gpusim.parallel import parallel_map
from ..gpusim.session import SimulationContext, default_context
from ..obs.tracer import span as obs_span
from ..layers.base import ConvSpec, PoolSpec, SoftmaxSpec
from ..layers.conv_kernels import ConvUnsupportedError, make_conv_kernel
from ..layers.pooling_kernels import make_pool_kernel
from ..layers.softmax_kernels import make_softmax_kernel


@dataclass(frozen=True)
class SweepPoint:
    """One (dimension value, implementation) measurement."""

    value: int
    implementation: str
    time_ms: float | None  # None when the implementation cannot run
    gflops: float | None


@dataclass(frozen=True)
class SweepResult:
    """A full sweep grid."""

    dimension: str
    values: tuple[int, ...]
    implementations: tuple[str, ...]
    points: tuple[SweepPoint, ...]

    def time(self, value: int, implementation: str) -> float | None:
        for p in self.points:
            if p.value == value and p.implementation == implementation:
                return p.time_ms
        raise KeyError((value, implementation))

    def winner(self, value: int) -> str:
        """Fastest runnable implementation at one sweep value."""
        candidates = [
            p for p in self.points if p.value == value and p.time_ms is not None
        ]
        if not candidates:
            raise ValueError(f"no implementation could run at {value}")
        return min(candidates, key=lambda p: p.time_ms).implementation

    def winners(self) -> list[tuple[int, str]]:
        return [(v, self.winner(v)) for v in self.values]


def crossovers(result: SweepResult) -> list[tuple[int, str, str]]:
    """(value, old winner, new winner) at every change of the fastest
    implementation along the sweep."""
    out: list[tuple[int, str, str]] = []
    winners = result.winners()
    for (_, prev), (value, cur) in zip(winners, winners[1:]):
        if cur != prev:
            out.append((value, prev, cur))
    return out


@dataclass(frozen=True)
class _Cell:
    """One picklable grid cell: enough to rebuild and time its kernel in
    any process (see :mod:`repro.gpusim.parallel`)."""

    kind: str  # "conv" | "pool" | "softmax"
    base: Any
    dimension: str
    value: int
    implementation: str
    check_memory: bool


def _cell_kernel(cell: _Cell) -> Any:
    spec = replace(cell.base, **{cell.dimension: cell.value})
    if cell.dimension == "h" and cell.kind != "softmax":
        spec = replace(spec, w=cell.value)
    if cell.kind == "conv":
        return make_conv_kernel(spec, cell.implementation)
    if cell.kind == "pool":
        return make_pool_kernel(spec, cell.implementation)
    return make_softmax_kernel(spec, cell.implementation)


def _eval_cell(context: SimulationContext, cell: _Cell) -> SweepPoint:
    """Scalar reference: time one cell through ``context.run``."""
    try:
        stats = context.run(_cell_kernel(cell), check_memory=cell.check_memory)
    except (ConvUnsupportedError, GpuOutOfMemoryError, ValueError):
        return SweepPoint(cell.value, cell.implementation, None, None)
    return SweepPoint(
        cell.value, cell.implementation, stats.time_ms, stats.achieved_gflops
    )


def _eval_cells(context: SimulationContext, cells: list[_Cell]) -> list[SweepPoint]:
    """Batched path: one memoized, fused evaluation per chunk of cells.

    Kernel-construction failures (unsupported shapes) and per-candidate
    evaluation failures (OOM, launch validation) become the same failed
    points the scalar loop produces.  Cells whose structural key is
    already cached skip the analytic stack entirely (see
    :func:`repro.gpusim.exec.evaluate_cells`).
    """
    points: list[SweepPoint | None] = [None] * len(cells)
    models = []
    owners = []
    for i, cell in enumerate(cells):
        try:
            models.append(_cell_kernel(cell))
        except (ConvUnsupportedError, ValueError):
            points[i] = SweepPoint(cell.value, cell.implementation, None, None)
            continue
        owners.append(i)
    check_memory = cells[0].check_memory if cells else False
    for i, outcome in zip(owners, evaluate_cells(context, models, check_memory)):
        cell = cells[i]
        if isinstance(outcome, Exception):
            points[i] = SweepPoint(cell.value, cell.implementation, None, None)
        else:
            points[i] = SweepPoint(
                cell.value,
                cell.implementation,
                outcome.time_ms,
                outcome.achieved_gflops,
            )
    return [p for p in points if p is not None]


def _run_grid(
    context: SimulationContext,
    kind: str,
    base: Any,
    check_memory: bool,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...],
    jobs: int | str | None,
) -> SweepResult:
    cells = [
        _Cell(kind, base, dimension, value, impl, check_memory)
        for value in values
        for impl in implementations
    ]
    with obs_span(
        f"sweep:{kind}:{dimension}",
        "sweep",
        kind=kind,
        dimension=dimension,
        cells=len(cells),
        implementations=list(implementations),
        jobs=jobs or 1,
    ):
        if batched_eval_enabled():
            # The execution engine memoizes repeated cells, fuses each
            # chunk into one vectorized evaluation (the whole grid when
            # serial), and fans chunks over the warm worker pool.
            points = map_chunks(_eval_cells, cells, context, jobs=jobs)
        else:
            points = parallel_map(_eval_cell, cells, context, jobs=jobs)
    return SweepResult(
        dimension=dimension,
        values=tuple(values),
        implementations=tuple(implementations),
        points=tuple(points),
    )


def sweep_conv(
    device: DeviceSpec,
    base: ConvSpec,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...] = ("direct", "im2col"),
    context: SimulationContext | None = None,
    jobs: int | str | None = None,
) -> SweepResult:
    """Vary one :class:`ConvSpec` field (``n``, ``ci``, ``co``, ``h``...)."""
    if not hasattr(base, dimension):
        raise ValueError(f"ConvSpec has no dimension {dimension!r}")
    ctx = context or default_context(device)
    return _run_grid(
        ctx, "conv", base, True, dimension, tuple(values), tuple(implementations), jobs
    )


def sweep_pool(
    device: DeviceSpec,
    base: PoolSpec,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...] = ("chwn", "nchw-linear"),
    context: SimulationContext | None = None,
    jobs: int | str | None = None,
) -> SweepResult:
    """Vary one :class:`PoolSpec` field."""
    if not hasattr(base, dimension):
        raise ValueError(f"PoolSpec has no dimension {dimension!r}")
    ctx = context or default_context(device)
    return _run_grid(
        ctx, "pool", base, False, dimension, tuple(values), tuple(implementations), jobs
    )


def sweep_softmax(
    device: DeviceSpec,
    base: SoftmaxSpec,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...] = ("cudnn", "opt"),
    context: SimulationContext | None = None,
    jobs: int | str | None = None,
) -> SweepResult:
    """Vary ``n`` or ``categories`` of a softmax layer."""
    if not hasattr(base, dimension):
        raise ValueError(f"SoftmaxSpec has no dimension {dimension!r}")
    ctx = context or default_context(device)
    return _run_grid(
        ctx,
        "softmax",
        base,
        False,
        dimension,
        tuple(values),
        tuple(implementations),
        jobs,
    )
