"""Sensitivity-analysis toolkit: sweep any layer dimension, any metric.

The paper's Fig. 4 is one instance of a general method — fix a layer shape,
vary one dimension, watch the implementations trade places.  This module
makes that method a first-class tool: :func:`sweep_conv` /
:func:`sweep_pool` / :func:`sweep_softmax` produce tidy result grids for
any dimension, and :func:`crossovers` locates where the winner changes
(the raw material for thresholds like Ct and Nt).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..gpusim.device import DeviceSpec
from ..gpusim.engine import GpuOutOfMemoryError, SimulationEngine
from ..gpusim.session import SimulationContext, default_context
from ..layers.base import ConvSpec, PoolSpec, SoftmaxSpec
from ..layers.conv_kernels import ConvUnsupportedError, make_conv_kernel
from ..layers.pooling_kernels import make_pool_kernel
from ..layers.softmax_kernels import make_softmax_kernel


@dataclass(frozen=True)
class SweepPoint:
    """One (dimension value, implementation) measurement."""

    value: int
    implementation: str
    time_ms: float | None  # None when the implementation cannot run
    gflops: float | None


@dataclass(frozen=True)
class SweepResult:
    """A full sweep grid."""

    dimension: str
    values: tuple[int, ...]
    implementations: tuple[str, ...]
    points: tuple[SweepPoint, ...]

    def time(self, value: int, implementation: str) -> float | None:
        for p in self.points:
            if p.value == value and p.implementation == implementation:
                return p.time_ms
        raise KeyError((value, implementation))

    def winner(self, value: int) -> str:
        """Fastest runnable implementation at one sweep value."""
        candidates = [
            p for p in self.points if p.value == value and p.time_ms is not None
        ]
        if not candidates:
            raise ValueError(f"no implementation could run at {value}")
        return min(candidates, key=lambda p: p.time_ms).implementation

    def winners(self) -> list[tuple[int, str]]:
        return [(v, self.winner(v)) for v in self.values]


def crossovers(result: SweepResult) -> list[tuple[int, str, str]]:
    """(value, old winner, new winner) at every change of the fastest
    implementation along the sweep."""
    out: list[tuple[int, str, str]] = []
    winners = result.winners()
    for (_, prev), (value, cur) in zip(winners, winners[1:]):
        if cur != prev:
            out.append((value, prev, cur))
    return out


def _run_grid(
    engine: SimulationEngine,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...],
    kernel_of: Callable[[int, str], object],
) -> SweepResult:
    points: list[SweepPoint] = []
    for value in values:
        for impl in implementations:
            try:
                stats = engine.run(kernel_of(value, impl))
                points.append(
                    SweepPoint(value, impl, stats.time_ms, stats.achieved_gflops)
                )
            except (ConvUnsupportedError, GpuOutOfMemoryError, ValueError):
                points.append(SweepPoint(value, impl, None, None))
    return SweepResult(
        dimension=dimension,
        values=tuple(values),
        implementations=tuple(implementations),
        points=tuple(points),
    )


def sweep_conv(
    device: DeviceSpec,
    base: ConvSpec,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...] = ("direct", "im2col"),
    context: SimulationContext | None = None,
) -> SweepResult:
    """Vary one :class:`ConvSpec` field (``n``, ``ci``, ``co``, ``h``...)."""
    if not hasattr(base, dimension):
        raise ValueError(f"ConvSpec has no dimension {dimension!r}")
    engine = (context or default_context(device)).engine(check_memory=True)

    def kernel_of(value: int, impl: str):
        spec = replace(base, **{dimension: value})
        if dimension == "h":
            spec = replace(spec, w=value)
        return make_conv_kernel(spec, impl)

    return _run_grid(engine, dimension, tuple(values), tuple(implementations), kernel_of)


def sweep_pool(
    device: DeviceSpec,
    base: PoolSpec,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...] = ("chwn", "nchw-linear"),
    context: SimulationContext | None = None,
) -> SweepResult:
    """Vary one :class:`PoolSpec` field."""
    if not hasattr(base, dimension):
        raise ValueError(f"PoolSpec has no dimension {dimension!r}")
    engine = (context or default_context(device)).engine(check_memory=False)

    def kernel_of(value: int, impl: str):
        spec = replace(base, **{dimension: value})
        if dimension == "h":
            spec = replace(spec, w=value)
        return make_pool_kernel(spec, impl)

    return _run_grid(engine, dimension, tuple(values), tuple(implementations), kernel_of)


def sweep_softmax(
    device: DeviceSpec,
    base: SoftmaxSpec,
    dimension: str,
    values: tuple[int, ...],
    implementations: tuple[str, ...] = ("cudnn", "opt"),
    context: SimulationContext | None = None,
) -> SweepResult:
    """Vary ``n`` or ``categories`` of a softmax layer."""
    if not hasattr(base, dimension):
        raise ValueError(f"SoftmaxSpec has no dimension {dimension!r}")
    engine = (context or default_context(device)).engine(check_memory=False)

    def kernel_of(value: int, impl: str):
        return make_softmax_kernel(replace(base, **{dimension: value}), impl)

    return _run_grid(engine, dimension, tuple(values), tuple(implementations), kernel_of)
