"""repro — memory-efficiency optimizations for deep CNNs on GPUs.

A faithful reproduction of Li et al., *Optimizing Memory Efficiency for
Deep Convolutional Neural Networks on GPUs* (SC'16), built on a warp-level
GPU memory-hierarchy simulator:

* :mod:`repro.gpusim` — device specs, coalescing, L2, occupancy, timing;
* :mod:`repro.tensors` — 4-D layouts, layout-aware tensors, the fast
  transformation kernels (Fig. 7);
* :mod:`repro.layers` — conv/pool/softmax/FC layers, each with a numeric
  implementation and GPU kernel models per layout;
* :mod:`repro.core` — the paper's contribution: layout heuristic,
  calibration, network planner, pooling auto-tuner, softmax fusion;
* :mod:`repro.framework` — the Caffe-analog runtime with plan-driven
  execution;
* :mod:`repro.networks` — LeNet / CIFAR / AlexNet / ZFNet / VGG and the
  Table-1 layer zoo;
* :mod:`repro.baselines` — cuda-convnet / Caffe / cuDNN execution models
  and the ``Opt`` whole-network scheme (Fig. 14).

Quickstart::

    from repro import TITAN_BLACK, Net, build_network, time_network
    net = Net(build_network("alexnet"))
    opt = time_network(net, TITAN_BLACK, "opt")
    mm = time_network(net, TITAN_BLACK, "cudnn-mm")
    print(f"Opt speedup over cuDNN-MM: {opt.speedup_over(mm):.2f}x")
"""

from .baselines import SCHEMES, NetworkTiming, compare_schemes, time_network
from .core import (
    LayoutThresholds,
    autotune_pooling,
    calibrate,
    fuse_softmax,
    plan_optimal,
    plan_single_layout,
    plan_with_heuristic,
    preferred_conv_layout,
    preferred_pool_layout,
    thresholds_for,
)
from .analysis import crossovers, sweep_conv, sweep_pool, sweep_softmax
from .framework import (
    Net,
    NetworkDef,
    Trainer,
    build_net,
    format_netdef,
    parse_netdef,
    train,
)
from .gpusim import (
    TITAN_BLACK,
    TITAN_X,
    DeviceSpec,
    SimStats,
    SimulationContext,
    SimulationEngine,
    default_context,
    get_device,
    global_sim_stats,
    simulate,
)
from .layers import ConvSpec, FCSpec, PoolSpec, SoftmaxSpec
from .networks import CONV_LAYERS, POOL_LAYERS, build_network
from .tensors import CHWN, NCHW, DataLayout, Tensor4D, TensorDesc, transform

__version__ = "1.0.0"

__all__ = [
    "CHWN",
    "CONV_LAYERS",
    "ConvSpec",
    "DataLayout",
    "DeviceSpec",
    "FCSpec",
    "LayoutThresholds",
    "NCHW",
    "Net",
    "NetworkDef",
    "NetworkTiming",
    "POOL_LAYERS",
    "PoolSpec",
    "SCHEMES",
    "SimStats",
    "SimulationContext",
    "SimulationEngine",
    "SoftmaxSpec",
    "TITAN_BLACK",
    "TITAN_X",
    "Tensor4D",
    "TensorDesc",
    "__version__",
    "autotune_pooling",
    "build_net",
    "build_network",
    "calibrate",
    "compare_schemes",
    "default_context",
    "format_netdef",
    "fuse_softmax",
    "get_device",
    "global_sim_stats",
    "parse_netdef",
    "plan_optimal",
    "plan_single_layout",
    "plan_with_heuristic",
    "preferred_conv_layout",
    "preferred_pool_layout",
    "simulate",
    "thresholds_for",
    "time_network",
    "train",
    "Trainer",
    "transform",
    "sweep_conv",
    "sweep_pool",
    "sweep_softmax",
    "crossovers",
]
