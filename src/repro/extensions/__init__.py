"""Forward-looking extensions the paper's Section VII anticipates:
Winograd fast convolution (in ``repro.layers.winograd``) and FP16/Pascal
execution (here)."""

from .fp16 import (
    Fp16LayerComparison,
    TESLA_P100,
    as_fp16,
    compare_layouts_fp16,
    fp16_device,
    memory_bound_share,
)

__all__ = [
    "Fp16LayerComparison",
    "TESLA_P100",
    "as_fp16",
    "compare_layouts_fp16",
    "fp16_device",
    "memory_bound_share",
]
