"""FP16 / Pascal extension (paper Section VII).

"The GPU hardware also continues to evolve quickly, such as the latest
NVIDIA Pascal architecture, that begins to support FP16 (e.g., NVIDIA
Tesla P100) to enhance the computational throughput and reduce the memory
usage significantly.  Nevertheless, the underlying impact from data layout
remains.  The reason is that with compute efficiency being addressed with
these new approaches, the performance impact of the memory efficiency is
likely to become more important."

This module tests that prediction in the model: a Tesla P100 device spec,
an FP16 execution mode (half the traffic, double the arithmetic rate), and
helpers that re-run the layout comparisons under it.  The expected outcome
— verified in ``tests/extensions/`` and ``bench_extension_fp16.py`` — is
that every layout winner survives and the memory-bound share of layer time
*grows*.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..gpusim.device import ArchProfile, DeviceSpec, register_device
from ..gpusim.kernel import KernelModel
from ..gpusim.session import SimulationContext, default_context
from ..layers.backward_kernels import ScaledKernel
from ..layers.base import ConvSpec
from ..layers.conv_kernels import make_conv_kernel
from ..networks.table1 import CONV_LAYERS

#: Tesla P100 (Pascal GP100): 9.3 FP32 TFLOPS, 18.7 FP16 TFLOPS, 732 GB/s
#: HBM2 (≈550 GB/s effective), 16 GB.  Arch profile follows the Maxwell
#: trends (earlier reuse saturation, stronger GEMMs).
TESLA_P100 = DeviceSpec(
    name="Tesla P100",
    sm_count=56,
    peak_gflops=9340.0,
    mem_bandwidth_gbs=550.0,
    clock_ghz=1.328,
    dram_gib=16.0,
    max_blocks_per_sm=32,
    l2_bytes=4 * 1024 * 1024,
    mem_latency_cycles=450,
    arch=ArchProfile(
        direct_conv_peak_eff=0.55,
        direct_conv_n_saturation=64,
        gemm_peak_eff=0.55,
        gemm_k_half=500.0,
        mlp_per_thread=8,
    ),
)

register_device("tesla-p100", TESLA_P100)
register_device("pascal", TESLA_P100)


def fp16_device(device: DeviceSpec) -> DeviceSpec:
    """The device as its FP16 pipeline sees it: double arithmetic rate.

    (Pascal GP100 executes paired half2 operations; bandwidth and latency
    are unchanged — traffic reduction is handled on the kernel side.)
    """
    return replace(
        device, name=f"{device.name} (FP16)", peak_gflops=2.0 * device.peak_gflops
    )


def as_fp16(kernel: KernelModel, math_only: bool = False) -> KernelModel:
    """An FP16 variant of a kernel.

    ``math_only=False`` (full FP16): the same FLOPs over half the bytes —
    storage and arithmetic both in half precision.  ``math_only=True``
    models early mixed precision: FP16 arithmetic over FP32 storage, i.e.
    only the compute side accelerates — the regime in which the paper's
    "memory efficiency becomes more important" argument is sharpest.

    Multi-pass implementations stay multi-pass: composed kernels are
    converted stage by stage so the engine still times them additively.
    """
    from ..gpusim.kernel import ComposedKernel

    if isinstance(kernel, ComposedKernel):
        return ComposedKernel(
            kernels=[as_fp16(k, math_only) for k in kernel.kernels],
            name=f"{kernel.name}-fp16",
        )
    mem_scale = 1.0 if math_only else 0.5
    return ScaledKernel(kernel, f"{kernel.name}-fp16", mem_scale=mem_scale)


@dataclass(frozen=True)
class Fp16LayerComparison:
    """FP32 vs FP16 layout comparison for one convolution layer."""

    layer: str
    fp32_winner: str
    fp16_winner: str
    fp32_ratio: float  # alternative / preferred time under FP32
    fp16_ratio: float
    fp16_speedup_preferred: float  # preferred impl: fp32 time / fp16 time


def compare_layouts_fp16(
    device: DeviceSpec,
    layers: dict[str, ConvSpec] | None = None,
    context: SimulationContext | None = None,
) -> list[Fp16LayerComparison]:
    """Re-run the Fig. 3 layout comparison in both precisions.

    ``context`` serves the FP32 side; the FP16 side always uses the shared
    session of the derived FP16 device (its spec differs, so its timings
    can never share cache entries with the FP32 run anyway).
    """
    layers = layers or CONV_LAYERS
    engine32 = (context or default_context(device)).engine(check_memory=False)
    engine16 = default_context(fp16_device(device)).engine(check_memory=False)
    out: list[Fp16LayerComparison] = []
    for name, spec in layers.items():
        t32 = {
            impl: engine32.run(make_conv_kernel(spec, impl)).time_ms
            for impl in ("direct", "im2col")
        }
        t16 = {
            impl: engine16.run(as_fp16(make_conv_kernel(spec, impl))).time_ms
            for impl in ("direct", "im2col")
        }
        w32 = min(t32, key=lambda k: t32[k])
        w16 = min(t16, key=lambda k: t16[k])
        out.append(
            Fp16LayerComparison(
                layer=name,
                fp32_winner="CHWN" if w32 == "direct" else "NCHW",
                fp16_winner="CHWN" if w16 == "direct" else "NCHW",
                fp32_ratio=max(t32.values()) / min(t32.values()),
                fp16_ratio=max(t16.values()) / min(t16.values()),
                fp16_speedup_preferred=t32[w32] / t16[w32],
            )
        )
    return out


def memory_bound_share(
    device: DeviceSpec,
    spec: ConvSpec,
    implementation: str,
    fp16: bool = False,
    math_only: bool = False,
    context: SimulationContext | None = None,
) -> float:
    """Fraction of a layer's time spent on the memory side."""
    if fp16:
        engine = default_context(fp16_device(device)).engine(check_memory=False)
        stats = engine.run(
            as_fp16(make_conv_kernel(spec, implementation), math_only=math_only)
        )
    else:
        engine = (context or default_context(device)).engine(check_memory=False)
        stats = engine.run(make_conv_kernel(spec, implementation))
    denom = stats.memory_ms + stats.compute_ms
    return stats.memory_ms / denom if denom else 0.0
