"""Compiler-style pass pipeline over the network graph IR.

The paper's framework integration (Section IV.D) — layout assignment,
transform insertion, transform fine-tuning, kernel fusion — runs here as
ordered passes over a :class:`repro.ir.Graph`:

1. ``ResolveShapes``        — shape inference + fixed per-layer costs;
2. ``AssignLayouts``        — the (Ct, Nt) heuristic and the optimal
   search.  On chains these are *exact ports* of the legacy planner (the
   run-flattening fine-tune and the (layer, layout) DP, tie-breaks
   included), so the pipeline is plan-identical to it; on DAGs the same
   trade-off generalizes to per-edge transform costs, solved by
   preference seeding plus coordinate-descent local search started from
   every uniform-layout assignment (so the result is never worse than any
   single-layout plan);
3. ``InsertTransforms``     — materialize an :class:`EdgeTransform` on
   every producer→consumer edge whose layouts disagree;
4. ``EliminateRedundantTransforms`` — relabel layout-agnostic nodes (LRN,
   concat) to cancel transform–inverse pairs across them;
5. ``FuseKernels``          — pattern-matching fusion with a registry
   (the paper's softmax fusion is the built-in pattern; others plug in
   via :func:`register_fusion_pattern`);
6. ``SelectImplementations`` — bind each node to its fastest
   implementation under the assigned layout.

:class:`PassManager` records per-pass wall time and before/after node
counts; ``repro plan --explain`` prints the table.  The final lowering
:func:`graph_to_plan` produces the legacy :class:`LayoutPlan`, which keeps
every existing consumer (framework, schemes, sweeps, lint, CLI, benches)
working unchanged.  ``plan_with_heuristic``/``plan_optimal`` in
``repro.core.planner`` are now thin wrappers over :func:`run_pipeline`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from math import prod
from typing import Callable, Sequence

from ..gpusim.batch import batched_eval_enabled
from ..gpusim.device import DeviceSpec
from ..gpusim.engine import SimulationEngine
from ..gpusim.exec import evaluate_cells, map_chunks
from ..gpusim.session import SimulationContext, default_context
from ..obs.metrics import global_registry
from ..obs.tracer import active_tracer
from ..obs.tracer import span as obs_span
from ..ir.build import graph_from_plan_nodes, infer_shapes, lower_netdef
from ..ir.graph import EdgeTransform, Graph, GraphNode, NodeKind
from ..layers.base import FCSpec, SoftmaxSpec
from ..layers.elementwise import ElementwiseKernel, LRNSpec, make_lrn_kernel
from ..layers.fc import make_fc_kernel
from ..tensors.layout import CHWN, NCHW, DataLayout
from ..tensors.tensor import TensorDesc
from ..tensors.transform_kernels import make_transform_kernel, transform_time_ms
from .heuristic import (
    LayoutThresholds,
    preferred_conv_layout,
    preferred_pool_layout,
    thresholds_for,
)
from .planner import (
    PLAN_LAYOUTS,
    LayoutPlan,
    PlanStep,
    _LayerCosts,
    _node_costs,
)

__all__ = [
    "FusionPattern",
    "PassContext",
    "PassContractError",
    "PassManager",
    "PassTrace",
    "PipelineOptions",
    "PipelineResult",
    "TransformCostTable",
    "default_passes",
    "graph_to_plan",
    "plan_network",
    "register_fusion_pattern",
    "run_pipeline",
]


@dataclass(frozen=True)
class PipelineOptions:
    """Everything that parameterizes one pipeline run."""

    strategy: str = "optimal"  # "heuristic" | "optimal" | "single"
    single_layout: DataLayout | None = None
    tune_pooling: bool = True
    allow_fft: bool = True
    layouts: tuple[DataLayout, ...] = PLAN_LAYOUTS
    thresholds: LayoutThresholds | None = None
    eliminate_redundant: bool = True
    fusion_patterns: tuple[str, ...] = ("softmax-fuse",)
    #: run each pass's declared contracts on its output graph and raise
    #: :class:`PassContractError` attributing the first violation to the
    #: offending pass.  Verification is observational: the planned result
    #: is byte-identical with it on or off.
    verify: bool = False
    #: worker processes for the batched transform-cost precompute
    #: (``"auto"`` = one per CPU); plans are identical for any value
    jobs: int | str | None = None

    def strategy_name(self) -> str:
        if self.strategy == "single":
            return f"single-{self.single_layout}"
        return self.strategy


@dataclass
class PassContext:
    """Mutable state the passes share (engine, per-node cost tables)."""

    device: DeviceSpec
    options: PipelineOptions
    engine: SimulationEngine
    costs: dict[str, _LayerCosts] = field(default_factory=dict)
    #: batched per-edge transform costs (populated by ``AssignLayouts``
    #: when batched evaluation is enabled; ``None`` → scalar queries)
    edge_costs: "TransformCostTable | None" = None


@dataclass(frozen=True)
class PassTrace:
    """One pass's footprint: wall time, node counts, pass-specific stats."""

    name: str
    ms: float
    nodes_before: int
    nodes_after: int
    stats: dict[str, object] = field(default_factory=dict)


class PassContractError(RuntimeError):
    """A pass produced a graph violating an invariant it declared.

    ``pass_name`` attributes the failure to the offending pass;
    ``violations`` holds the
    :class:`~repro.analysis.dataflow.contracts.ContractViolation` records
    the checker collected for it.
    """

    def __init__(self, pass_name: str, violations: Sequence[object]) -> None:
        self.pass_name = pass_name
        self.violations = tuple(violations)
        lines = [
            f"pass {pass_name!r} violated its contracts "
            f"({len(self.violations)} finding(s)):"
        ]
        lines += [f"  {v.format()}" for v in self.violations]  # type: ignore[attr-defined]
        super().__init__("\n".join(lines))


class Pass:
    """A named graph transformation.  Subclasses mutate and return the
    graph; anything worth reporting goes into ``self.stats``.

    ``contracts`` names the invariants (see
    :mod:`repro.analysis.dataflow.contracts`) that must hold on the
    graph this pass returns; the verifying :class:`PassManager` checks
    them after the pass runs.  A pass that conditionally skips work may
    prune ``self.contracts`` inside :meth:`run`.
    """

    name = "pass"
    #: invariant names guaranteed on this pass's output graph
    default_contracts: tuple[str, ...] = ("structure",)

    def __init__(self) -> None:
        self.stats: dict[str, object] = {}
        self.contracts: tuple[str, ...] = self.default_contracts

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        raise NotImplementedError


class PassManager:
    """Run passes in order, timing each and snapshotting node counts.

    Each pass is *always* recorded: its wall time lands in a
    :class:`PassTrace`, in the ``pipeline.pass_ms.*`` histograms of the
    global metrics registry, and — when a tracer is installed — in a
    ``pipeline.pass`` span whose attributes carry the pass's stats.  The
    trace is available from every caller (``repro plan --trace``), not
    just the ``--explain`` table.

    With ``verify=True`` each pass's declared contracts are checked on
    its output graph and the first violation raises
    :class:`PassContractError` naming that pass — a compiler-style
    "verify between passes" mode (``repro plan --verify``).
    """

    def __init__(self, passes: Sequence[Pass], verify: bool = False) -> None:
        self.passes = list(passes)
        self.verify = verify

    def run(self, graph: Graph, ctx: PassContext) -> tuple[Graph, tuple[PassTrace, ...]]:
        registry = global_registry()
        traces: list[PassTrace] = []
        for p in self.passes:
            before = len(graph)
            started = time.perf_counter()
            with obs_span(p.name, "pipeline.pass", nodes_before=before) as sp:
                graph = p.run(graph, ctx)
                if sp is not None:
                    sp.attrs["nodes_after"] = len(graph)
                    sp.attrs.update(
                        {k: _attr_safe(v) for k, v in p.stats.items()}
                    )
            elapsed_ms = (time.perf_counter() - started) * 1e3
            registry.histogram(f"pipeline.pass_ms.{p.name}").observe(elapsed_ms)
            traces.append(
                PassTrace(
                    name=p.name,
                    ms=elapsed_ms,
                    nodes_before=before,
                    nodes_after=len(graph),
                    stats=dict(p.stats),
                )
            )
            if self.verify and p.contracts:
                self._check(graph, p)
        return graph, tuple(traces)

    @staticmethod
    def _check(graph: Graph, p: Pass) -> None:
        # Imported lazily: the analysis layer depends on this module, so
        # the contract checker cannot be a module-level import here.
        from ..analysis.dataflow.contracts import check_contracts

        violations = check_contracts(graph, p.contracts, pass_name=p.name)
        if violations:
            raise PassContractError(p.name, violations)


def _attr_safe(value: object) -> object:
    """Pass stats → span attributes (JSON-safe scalars/containers only)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_attr_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _attr_safe(v) for k, v in value.items()}
    return repr(value)


# ---------------------------------------------------------------------------
# shared helpers


def _edge_desc(
    producer: GraphNode | None,
    consumer: GraphNode,
    src: DataLayout,
    dst: DataLayout,
) -> tuple[tuple[int, ...], DataLayout, DataLayout] | None:
    """The (dims, src, dst) a transform on this edge would move, or ``None``
    when the edge is free (same layout, classifier consumer, unknown dims)."""
    if src == dst or consumer.kind is NodeKind.CLASSIFIER:
        return None
    if producer is not None and len(consumer.inputs) > 1:
        dims = producer.out_dims
    else:
        dims = consumer.in_dims
    if dims is None:
        return None
    return dims, src, dst


def edge_transform_ms(
    device: DeviceSpec,
    producer: GraphNode | None,
    consumer: GraphNode,
    src: DataLayout,
    dst: DataLayout,
) -> float:
    """Transform cost on one producer→consumer edge (scalar reference).

    Generalizes the legacy per-node ``_transform_ms``: on single-input
    consumers the transformed tensor is the consumer's input (bit-identical
    to the legacy accounting); on multi-input consumers (concat) it is the
    individual producer's output, not the joined tensor.
    """
    desc = _edge_desc(producer, consumer, src, dst)
    if desc is None:
        return 0.0
    dims, src, dst = desc
    return transform_time_ms(device, TensorDesc(*dims, layout=src), dst, method="auto")


def _price_transform_chunk(
    context: SimulationContext, models: list
) -> "list":
    """Module-level (picklable) chunk body for the transform precompute."""
    return evaluate_cells(context, models, check_memory=False)


class TransformCostTable:
    """Batched per-edge transform costs for one planning run.

    ``precompute`` enumerates every distinct (dims, src layout, dst layout)
    transform the planner can query on a graph — edges × layouts² collapse
    to a handful of unique tensor shapes — and prices them all in one
    vectorized evaluation.  ``edge_ms`` is then a dict probe.  A query
    outside the precomputed set (e.g. a pass relabeling to an exotic
    layout) falls back to the scalar :func:`transform_time_ms` and is
    memoized, so the table answers exactly what the scalar path would:
    plans are byte-identical with batching on or off.
    """

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self._ms: dict[tuple[tuple[int, ...], str, str], float] = {}

    def precompute(
        self,
        graph: Graph,
        layouts: tuple[DataLayout, ...],
        jobs: int | str | None = None,
    ) -> int:
        """Batch-price every transform reachable on ``graph``'s edges.

        Returns the number of distinct transform kernels evaluated.
        """
        pending: dict[tuple[tuple[int, ...], str, str], object] = {}
        for node in graph:
            for src_name in node.inputs:
                producer = graph[src_name]
                for src in layouts:
                    for dst in layouts:
                        desc = _edge_desc(producer, node, src, dst)
                        if desc is None:
                            continue
                        dims, src_l, dst_l = desc
                        key = (dims, str(src_l), str(dst_l))
                        if key in self._ms or key in pending:
                            continue
                        pending[key] = make_transform_kernel(
                            TensorDesc(*dims, layout=src_l), dst_l, method="auto"
                        )
        if pending:
            # The scalar path prices transforms on the device's default
            # context; the memoized batch does the same so cache/metrics
            # accounting lands in the same place — and repeat plannings of
            # the same shapes skip the analytic stack entirely.
            outcomes = map_chunks(
                _price_transform_chunk,
                list(pending.values()),
                default_context(self.device),
                jobs=jobs,
            )
            for key, outcome in zip(pending, outcomes):
                if isinstance(outcome, Exception):
                    raise outcome
                self._ms[key] = outcome.time_ms
        return len(pending)

    def edge_ms(
        self,
        producer: GraphNode | None,
        consumer: GraphNode,
        src: DataLayout,
        dst: DataLayout,
    ) -> float:
        """Memoized :func:`edge_transform_ms`."""
        desc = _edge_desc(producer, consumer, src, dst)
        if desc is None:
            return 0.0
        dims, src_l, dst_l = desc
        key = (dims, str(src_l), str(dst_l))
        ms = self._ms.get(key)
        if ms is None:
            ms = transform_time_ms(
                self.device, TensorDesc(*dims, layout=src_l), dst_l, method="auto"
            )
            self._ms[key] = ms
        return ms


def _ctx_edge_ms(
    ctx: PassContext,
    producer: GraphNode | None,
    consumer: GraphNode,
    src: DataLayout,
    dst: DataLayout,
) -> float:
    """Edge cost through the context's batched table when present."""
    if ctx.edge_costs is not None:
        return ctx.edge_costs.edge_ms(producer, consumer, src, dst)
    return edge_transform_ms(ctx.device, producer, consumer, src, dst)


def _graph_node_costs(
    engine: SimulationEngine,
    node: GraphNode,
    device: DeviceSpec,
    tune_pooling: bool,
    allow_fft: bool,
    layouts: tuple[DataLayout, ...],
) -> _LayerCosts:
    """Per-layout costs for one graph node (concat handled here; everything
    else shares the planner's cost model verbatim)."""
    if node.kind is NodeKind.CONCAT:
        costs = _LayerCosts(node)  # type: ignore[arg-type]
        for layout in layouts:
            costs.per_layout[str(layout)] = (node.fixed_ms, "concat", None)
        return costs
    return _node_costs(  # type: ignore[arg-type]
        engine, node, device, tune_pooling, allow_fft, layouts
    )


def _consumers_map(graph: Graph) -> dict[str, list[GraphNode]]:
    consumers: dict[str, list[GraphNode]] = {name: [] for name in graph.nodes}
    for node in graph:
        for src in node.inputs:
            consumers[src].append(node)
    return consumers


def _insert_transforms(
    graph: Graph,
    device: DeviceSpec,
    costs: "TransformCostTable | None" = None,
) -> tuple[int, float]:
    """(Re)materialize edge transforms from the current layout assignment.

    Mirrors the legacy ``_assemble`` walk: the layout "carried" past a
    CLASSIFIER node is its producer's (flattening erases the 4-D layout,
    so classifiers never update it), and a transform is only recorded when
    its modeled cost is positive.  ``costs`` routes edge pricing through
    the batched :class:`TransformCostTable` when one is available.
    """
    count, total = 0, 0.0
    carried: dict[str, DataLayout | None] = {}
    for node in graph.topological():
        if node.kind is NodeKind.CLASSIFIER and node.inputs:
            carried[node.name] = carried[node.inputs[0]]
        else:
            carried[node.name] = node.layout
        transforms: list[EdgeTransform] = []
        for src in node.inputs:
            src_layout = carried[src]
            if src_layout is None or node.layout is None:
                continue
            if costs is not None:
                t_ms = costs.edge_ms(graph[src], node, src_layout, node.layout)
            else:
                t_ms = edge_transform_ms(
                    device, graph[src], node, src_layout, node.layout
                )
            if t_ms > 0:
                transforms.append(
                    EdgeTransform(src, src_layout, node.layout, t_ms)
                )
                count += 1
                total += t_ms
        node.transforms = tuple(transforms)
    return count, total


# ---------------------------------------------------------------------------
# passes


class ResolveShapes(Pass):
    """Shape inference plus fixed per-layer costs (LRN, FC, concat).

    Graphs lowered from a ``NetworkDef`` carry layer definitions and get
    full inference; graphs wrapped from legacy ``PlanNode`` chains arrive
    resolved and only fill cost gaps.
    """

    name = "ResolveShapes"
    default_contracts = ("structure", "shapes")

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        if len(graph) and all(n.defn is not None for n in graph):
            infer_shapes(graph)
            self.stats["resolved"] = len(graph)
        timed = 0
        for node in graph:
            if node.fixed_ms:
                continue
            if node.kind is NodeKind.ELEMENTWISE and isinstance(node.spec, LRNSpec):
                assert node.in_dims is not None
                kernel = make_lrn_kernel(prod(node.in_dims), node.spec)
            elif node.kind is NodeKind.CLASSIFIER and isinstance(node.spec, FCSpec):
                kernel = make_fc_kernel(node.spec)
            elif node.kind is NodeKind.CONCAT:
                assert node.out_dims is not None
                kernel = ElementwiseKernel(prod(node.out_dims), name="concat")
            else:
                continue
            node.fixed_ms = ctx.engine.run(kernel).time_ms
            timed += 1
        self.stats["fixed_cost_nodes"] = timed
        return graph


class AssignLayouts(Pass):
    """Assign a storage layout to every node.

    Chains replay the legacy planner exactly (preferences + run-flattening
    fine-tune for ``heuristic``; the (layer, layout) DP for ``optimal``).
    DAGs use the same per-node costs and per-edge transform costs:
    ``heuristic`` applies the raw (Ct, Nt)/pooling preferences (agnostic
    nodes inherit their first producer's choice — the later
    ``EliminateRedundantTransforms`` pass repairs wasteful inheritances);
    ``optimal`` runs coordinate-descent local search from the preference
    assignment and from every uniform-layout assignment, keeping the best.
    """

    name = "AssignLayouts"
    default_contracts = ("structure", "shapes", "layouts-assigned")

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        opts = ctx.options
        if not opts.layouts:
            raise ValueError("need at least one candidate layout")
        ctx.costs = {
            node.name: _graph_node_costs(
                ctx.engine, node, ctx.device,
                opts.tune_pooling, opts.allow_fft, opts.layouts,
            )
            for node in graph
        }
        if batched_eval_enabled():
            ctx.edge_costs = TransformCostTable(ctx.device)
            self.stats["edge_kernels_batched"] = ctx.edge_costs.precompute(
                graph, opts.layouts, jobs=opts.jobs
            )
        if opts.strategy == "single":
            if opts.single_layout is None:
                raise ValueError("strategy 'single' needs single_layout")
            assign = {node.name: opts.single_layout for node in graph}
            algorithm = "single"
        elif opts.strategy not in ("heuristic", "optimal"):
            raise ValueError(f"unknown strategy {opts.strategy!r}")
        elif graph.is_chain():
            assign = self._assign_chain(graph, ctx)
            algorithm = f"chain-{'finetune' if opts.strategy == 'heuristic' else 'dp'}"
        else:
            assign = self._assign_dag(graph, ctx)
            algorithm = f"dag-{'preference' if opts.strategy == 'heuristic' else 'descent'}"
        histogram: dict[str, int] = {}
        for node in graph:
            node.layout = assign[node.name]
            histogram[str(node.layout)] = histogram.get(str(node.layout), 0) + 1
        self.stats["algorithm"] = algorithm
        self.stats["layouts"] = histogram
        self._trace_decisions(graph, ctx, assign, algorithm)
        return graph

    def _trace_decisions(
        self,
        graph: Graph,
        ctx: PassContext,
        assign: dict[str, DataLayout],
        algorithm: str,
    ) -> None:
        """Emit one instant event per node: the layout that won, the raw
        (Ct, Nt)/pooling preference it started from, and the per-layout
        layer costs the decision weighed — the planner's "why"."""
        tracer = active_tracer()
        if tracer is None:
            return
        opts = ctx.options
        prefs: dict[str, DataLayout] = {}
        if CHWN in opts.layouts and NCHW in opts.layouts:
            prefs = self._preferences(
                graph, opts.thresholds or thresholds_for(ctx.device)
            )
        for node in graph.topological():
            costs = ctx.costs.get(node.name)
            preferred = prefs.get(node.name)
            tracer.event(
                f"layout:{node.name}",
                "pipeline.decision",
                node=node.name,
                kind=node.kind.value,
                algorithm=algorithm,
                layout=str(assign[node.name]),
                preferred=str(preferred) if preferred is not None else None,
                overridden=(
                    preferred is not None and assign[node.name] != preferred
                ),
                costs_ms={
                    layout: round(choice[0], 6)
                    for layout, choice in costs.per_layout.items()
                }
                if costs is not None
                else None,
            )

    # -- shared preference seeding ------------------------------------------
    @staticmethod
    def _preferences(
        graph: Graph, thresholds: LayoutThresholds
    ) -> dict[str, DataLayout]:
        """Per-node (Ct, Nt)/pooling preferences; non-layout-bearing nodes
        inherit their first producer's (the chain planner's ``preferred[-1]``
        generalized to DAGs)."""
        prefs: dict[str, DataLayout] = {}
        for node in graph.topological():
            if node.kind is NodeKind.CONV:
                prefs[node.name] = preferred_conv_layout(node.spec, thresholds)  # type: ignore[arg-type]
            elif node.kind is NodeKind.POOL:
                prefs[node.name] = preferred_pool_layout(node.spec)  # type: ignore[arg-type]
            elif node.inputs:
                prefs[node.name] = prefs[node.inputs[0]]
            else:
                prefs[node.name] = CHWN
        return prefs

    # -- chain: exact legacy ports ------------------------------------------
    def _assign_chain(self, graph: Graph, ctx: PassContext) -> dict[str, DataLayout]:
        opts = ctx.options
        order = graph.topological()
        costs = [ctx.costs[n.name] for n in order]

        def edge(i: int, a: DataLayout, b: DataLayout) -> float:
            node = order[i]
            producer = graph[node.inputs[0]] if node.inputs else None
            return _ctx_edge_ms(ctx, producer, node, a, b)

        if opts.strategy == "heuristic":
            thresholds = opts.thresholds or thresholds_for(ctx.device)
            preferred = [self._preferences(graph, thresholds)[n.name] for n in order]
            seq = _finetune_chain(preferred, costs, edge)
        else:
            seq = _dp_chain(costs, edge, opts.layouts)
        return {order[i].name: seq[i] for i in range(len(order))}

    # -- DAG: preference seeding + coordinate descent ------------------------
    def _assign_dag(self, graph: Graph, ctx: PassContext) -> dict[str, DataLayout]:
        opts = ctx.options
        thresholds = opts.thresholds or thresholds_for(ctx.device)
        layout_set = set(opts.layouts)
        prefs: dict[str, DataLayout] | None = None
        if CHWN in layout_set and NCHW in layout_set:
            prefs = self._preferences(graph, thresholds)
        if opts.strategy == "heuristic":
            return prefs or {n.name: opts.layouts[0] for n in graph}

        consumers = _consumers_map(graph)

        def edge(p: GraphNode, n: GraphNode, a: DataLayout, b: DataLayout) -> float:
            return _ctx_edge_ms(ctx, p, n, a, b)

        def total(assign: dict[str, DataLayout]) -> float:
            t = sum(ctx.costs[n.name].cost(assign[n.name]) for n in graph)
            for node in graph:
                for src in node.inputs:
                    t += edge(graph[src], node, assign[src], assign[node.name])
            return t

        def descend(assign: dict[str, DataLayout]) -> dict[str, DataLayout]:
            changed = True
            while changed:
                changed = False
                for node in graph.topological():
                    if node.kind is NodeKind.CLASSIFIER:
                        continue

                    def local(layout: DataLayout) -> float:
                        c = ctx.costs[node.name].cost(layout)
                        for src in node.inputs:
                            c += edge(graph[src], node, assign[src], layout)
                        for cons in consumers[node.name]:
                            c += edge(node, cons, layout, assign[cons.name])
                        return c

                    current_cost = local(assign[node.name])
                    for layout in opts.layouts:
                        candidate_cost = local(layout)
                        if candidate_cost + 1e-12 < current_cost:
                            assign[node.name] = layout
                            current_cost = candidate_cost
                            changed = True
            return assign

        inits: list[dict[str, DataLayout]] = []
        if prefs is not None:
            inits.append(dict(prefs))
        for layout in opts.layouts:
            inits.append({n.name: layout for n in graph})
        return min((descend(a) for a in inits), key=total)


def _finetune_chain(
    preferred: list[DataLayout],
    costs: list[_LayerCosts],
    edge: Callable[[int, DataLayout, DataLayout], float],
) -> list[DataLayout]:
    """The legacy heuristic's fine-tune: flatten a run of same-preference
    layers into a neighbouring layout when the run's benefit does not pay
    for its boundary transforms.  Verbatim port of the planner loop."""
    layouts = list(preferred)
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(layouts):
            j = i
            while j < len(layouts) and layouts[j] == layouts[i]:
                j += 1
            current = layouts[i]
            prev_l = layouts[i - 1] if i > 0 else None
            next_l = layouts[j] if j < len(layouts) else None
            alt = prev_l if (prev_l is not None and prev_l != current) else (
                next_l if (next_l is not None and next_l != current) else None
            )
            if alt is not None:
                keep_cost = sum(costs[k].cost(current) for k in range(i, j))
                if prev_l is not None and prev_l != current:
                    keep_cost += edge(i, prev_l, current)
                if next_l is not None and next_l != current:
                    keep_cost += edge(j, current, next_l)
                flat_cost = sum(costs[k].cost(alt) for k in range(i, j))
                if prev_l is not None and prev_l != alt:
                    flat_cost += edge(i, prev_l, alt)
                if next_l is not None and next_l != alt:
                    flat_cost += edge(j, alt, next_l)
                if flat_cost < keep_cost:
                    for k in range(i, j):
                        layouts[k] = alt
                    changed = True
            i = j
    return layouts


def _dp_chain(
    costs: list[_LayerCosts],
    edge: Callable[[int, DataLayout, DataLayout], float],
    layouts: tuple[DataLayout, ...],
) -> list[DataLayout]:
    """The legacy (layer, layout) dynamic program, tie-breaks included."""
    n = len(costs)
    best: list[dict[str, float]] = [dict() for _ in range(n)]
    back: list[dict[str, str]] = [dict() for _ in range(n)]
    for layout in layouts:
        best[0][str(layout)] = costs[0].cost(layout)
    for i in range(1, n):
        for layout in layouts:
            options = []
            for prev in layouts:
                t = edge(i, prev, layout)
                options.append(
                    (best[i - 1][str(prev)] + t + costs[i].cost(layout), str(prev))
                )
            cost, prev_key = min(options)
            best[i][str(layout)] = cost
            back[i][str(layout)] = prev_key
    final = min(layouts, key=lambda lo: best[n - 1][str(lo)])
    seq = [final]
    for i in range(n - 1, 0, -1):
        seq.append(DataLayout(back[i][str(seq[-1])]))
    seq.reverse()
    return seq


class InsertTransforms(Pass):
    """Materialize an :class:`EdgeTransform` on every edge whose layouts
    disagree, priced by the transform kernel model."""

    name = "InsertTransforms"
    default_contracts = (
        "structure", "shapes", "layouts-assigned", "layout-coherent",
    )

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        count, total = _insert_transforms(graph, ctx.device, ctx.edge_costs)
        self.stats["inserted"] = count
        self.stats["transform_ms"] = round(total, 6)
        return graph


class EliminateRedundantTransforms(Pass):
    """Cancel transform–inverse pairs across layout-agnostic nodes.

    A layout-agnostic node (LRN, concat) streams the same bytes under any
    layout, so its label is free to move: if relabeling strictly lowers the
    total cost of its incident transforms, the pair it sat between hoists
    away.  Chains planned by the exact DP never improve here (the DP
    already searched agnostic labels); the pass earns its keep on DAG
    preference assignments, e.g. a CHWN branch feeding an NCHW-labeled
    concat that immediately transforms back to CHWN for the next pool.
    """

    name = "EliminateRedundantTransforms"
    default_contracts = (
        "structure", "shapes", "layouts-assigned", "layout-coherent",
        "no-inverse-pairs",
    )

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        if not ctx.options.eliminate_redundant:
            self.stats["skipped"] = True
            # A skipped elimination guarantees nothing beyond its input.
            self.contracts = tuple(
                c for c in self.contracts if c != "no-inverse-pairs"
            )
            return graph
        before_ms = sum(n.transform_ms for n in graph)
        consumers = _consumers_map(graph)
        relabeled: list[str] = []
        changed = True
        while changed:
            changed = False
            for node in graph.topological():
                if not node.kind.layout_agnostic or node.layout is None:
                    continue

                def incident(layout: DataLayout) -> float:
                    t = 0.0
                    for src in node.inputs:
                        src_layout = graph[src].layout
                        if src_layout is None:
                            continue
                        t += _ctx_edge_ms(ctx, graph[src], node, src_layout, layout)
                    for cons in consumers[node.name]:
                        if cons.layout is None:
                            continue
                        t += _ctx_edge_ms(ctx, node, cons, layout, cons.layout)
                    return t

                current_cost = incident(node.layout)
                for layout in ctx.options.layouts:
                    candidate = incident(layout)
                    if candidate + 1e-12 < current_cost:
                        node.layout = layout
                        current_cost = candidate
                        if node.name not in relabeled:
                            relabeled.append(node.name)
                        changed = True
        removed = 0
        added = 0
        if relabeled:
            old = {n.name: set(n.transforms) for n in graph}
            _insert_transforms(graph, ctx.device, ctx.edge_costs)
            for n in graph:
                removed += len(old[n.name] - set(n.transforms))
                added += len(set(n.transforms) - old[n.name])
        after_ms = sum(n.transform_ms for n in graph)
        self.stats["relabeled"] = tuple(relabeled)
        self.stats["removed"] = removed
        self.stats["added"] = added
        self.stats["ms_saved"] = round(before_ms - after_ms, 6)
        return graph


@dataclass(frozen=True)
class FusionPattern:
    """A registered fusion rewrite: ``apply`` inspects one node (and its
    neighbourhood via the graph) and returns True after rewriting it."""

    name: str
    description: str
    apply: Callable[[Graph, GraphNode, PassContext], bool]


FUSION_PATTERNS: dict[str, FusionPattern] = {}


def register_fusion_pattern(
    name: str, description: str
) -> Callable[[Callable[[Graph, GraphNode, PassContext], bool]], Callable[[Graph, GraphNode, PassContext], bool]]:
    """Decorator adding a pattern to the registry ``FuseKernels`` draws on."""

    def decorate(
        fn: Callable[[Graph, GraphNode, PassContext], bool]
    ) -> Callable[[Graph, GraphNode, PassContext], bool]:
        FUSION_PATTERNS[name] = FusionPattern(name, description, fn)
        return fn

    return decorate


@register_fusion_pattern(
    "softmax-fuse",
    "merge the five-kernel softmax into one inner-parallelized kernel "
    "(Section V.B); the cost model already prices classifiers with the "
    "fused kernel, so this pattern annotates the node it claims",
)
def _match_softmax_fuse(graph: Graph, node: GraphNode, ctx: PassContext) -> bool:
    if node.kind is not NodeKind.CLASSIFIER or not isinstance(node.spec, SoftmaxSpec):
        return False
    from .fusion import can_fuse_softmax

    if not can_fuse_softmax(node.spec, ctx.device):
        return False
    node.fused = "softmax-fuse"
    return True


@register_fusion_pattern(
    "transform-pooling",
    "fold a pooling layer's single incoming layout transform into the pool "
    "kernel's gather: the fused kernel reads the producer's layout "
    "directly, saving the standalone transform's store+reload round trip "
    "(modeled as half the transform's cost).  Opt-in.",
)
def _match_transform_pooling(graph: Graph, node: GraphNode, ctx: PassContext) -> bool:
    if node.kind is not NodeKind.POOL or len(node.transforms) != 1:
        return False
    (t,) = node.transforms
    if t.ms <= 0:
        return False
    node.transforms = (replace(t, ms=t.ms * 0.5),)
    node.fused = "transform-pooling"
    return True


class FuseKernels(Pass):
    """Apply the enabled fusion patterns, first match claiming each node."""

    name = "FuseKernels"
    default_contracts = (
        "structure", "shapes", "layouts-assigned", "layout-coherent",
    )

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        matched: dict[str, int] = {}
        for pattern_name in ctx.options.fusion_patterns:
            pattern = FUSION_PATTERNS.get(pattern_name)
            if pattern is None:
                raise ValueError(
                    f"unknown fusion pattern {pattern_name!r}; "
                    f"registered: {sorted(FUSION_PATTERNS)}"
                )
            hits = 0
            for node in graph.topological():
                if node.fused is None and pattern.apply(graph, node, ctx):
                    hits += 1
            matched[pattern_name] = hits
        self.stats["matched"] = matched
        return graph


class SelectImplementations(Pass):
    """Bind each node to the fastest implementation under its layout."""

    name = "SelectImplementations"
    default_contracts = (
        "structure", "shapes", "layouts-assigned", "layout-coherent",
    )

    def run(self, graph: Graph, ctx: PassContext) -> Graph:
        histogram: dict[str, int] = {}
        for node in graph:
            costs = ctx.costs[node.name]
            layout = node.layout if node.layout is not None else ctx.options.layouts[0]
            layer_ms, impl, coarsen = costs.choice(layout)
            node.layer_ms = layer_ms
            node.implementation = impl
            node.coarsening = coarsen
            histogram[impl] = histogram.get(impl, 0) + 1
        self.stats["implementations"] = histogram
        return graph


# ---------------------------------------------------------------------------
# lowering + drivers


def graph_to_plan(graph: Graph, device: DeviceSpec, strategy: str) -> LayoutPlan:
    """Lower an annotated graph to the legacy :class:`LayoutPlan`.

    Layout is masked to None on non-conv/pool steps (their kernels are
    layout-transparent); a step with exactly one edge transform reports it
    via ``transformed_from``/``transformed_to`` as the legacy planner did.
    Multi-input joins sum their edges' costs into ``transform_ms``.
    """
    steps: list[PlanStep] = []
    for node in graph.topological():
        single = node.transforms[0] if len(node.transforms) == 1 else None
        steps.append(
            PlanStep(
                name=node.name,
                kind=node.kind,
                layout=node.layout if node.kind.layout_bearing else None,
                implementation=node.implementation or "",
                layer_ms=node.layer_ms,
                transform_ms=node.transform_ms,
                coarsening=node.coarsening,
                transformed_from=single.from_layout if single else None,
                transformed_to=single.to_layout if single else None,
            )
        )
    return LayoutPlan(steps=tuple(steps), device=device.name, strategy=strategy)


@dataclass
class PipelineResult:
    """The annotated graph, its lowered plan, and the per-pass trace."""

    graph: Graph
    plan: LayoutPlan
    trace: tuple[PassTrace, ...]

    def explain(self) -> str:
        """The per-pass timing/stat table (``repro plan --explain``)."""
        lines = [
            f"pipeline[{self.plan.strategy}] on {self.plan.device}: "
            f"{len(self.graph)} nodes, {self.plan.total_ms:.3f} ms planned"
        ]
        header = f"  {'pass':32s} {'ms':>8s} {'nodes':>9s}  stats"
        lines.append(header)
        for t in self.trace:
            nodes = f"{t.nodes_before}->{t.nodes_after}"
            stats = ", ".join(f"{k}={v}" for k, v in t.stats.items()) or "-"
            lines.append(f"  {t.name:32s} {t.ms:8.3f} {nodes:>9s}  {stats}")
        return "\n".join(lines)


def default_passes() -> tuple[Pass, ...]:
    """The standard pipeline, in order."""
    return (
        ResolveShapes(),
        AssignLayouts(),
        InsertTransforms(),
        EliminateRedundantTransforms(),
        FuseKernels(),
        SelectImplementations(),
    )


def run_pipeline(
    device: DeviceSpec,
    graph: Graph,
    options: PipelineOptions | None = None,
    context: SimulationContext | None = None,
    passes: Sequence[Pass] | None = None,
) -> PipelineResult:
    """Run the pass pipeline over ``graph`` and lower to a plan."""
    options = options or PipelineOptions()
    if not options.layouts:
        raise ValueError("need at least one candidate layout")
    if len(graph) == 0:
        plan = LayoutPlan(steps=(), device=device.name, strategy=options.strategy_name())
        return PipelineResult(graph=graph, plan=plan, trace=())
    engine = (context or default_context(device)).engine(check_memory=False)
    ctx = PassContext(device=device, options=options, engine=engine)
    manager = PassManager(
        passes if passes is not None else default_passes(),
        verify=options.verify,
    )
    with obs_span(
        "run_pipeline",
        "pipeline",
        strategy=options.strategy_name(),
        device=device.name,
        nodes=len(graph),
    ) as sp:
        graph, trace = manager.run(graph, ctx)
        plan = graph_to_plan(graph, device, options.strategy_name())
        if sp is not None:
            sp.attrs["total_ms"] = plan.total_ms
            sp.attrs["transform_count"] = plan.transform_count
    return PipelineResult(graph=graph, plan=plan, trace=trace)


def plan_network(
    device: DeviceSpec,
    net: object,
    options: PipelineOptions | None = None,
    context: SimulationContext | None = None,
) -> PipelineResult:
    """Lower a :class:`NetworkDef` and run the pipeline over it."""
    return run_pipeline(device, lower_netdef(net), options, context)  # type: ignore[arg-type]


def plan_nodes(
    device: DeviceSpec,
    nodes: Sequence[object],
    options: PipelineOptions | None = None,
    context: SimulationContext | None = None,
) -> PipelineResult:
    """Wrap a legacy planner chain and run the pipeline over it (the
    compatibility path behind ``plan_with_heuristic``/``plan_optimal``)."""
    return run_pipeline(device, graph_from_plan_nodes(list(nodes)), options, context)  # type: ignore[arg-type]
