"""The paper's light-weight data-layout selection heuristic (Section IV.A).

For a convolutional layer:

1. if ``C < Ct`` the CHWN layout is preferred (the NCHW path's matrix
   expansion cost is not amortized by a short GEMM reduction);
2. else if ``N >= Nt`` CHWN is still preferred (the batch dimension is wide
   enough for both coalescing and per-thread register reuse);
3. otherwise NCHW is preferred.

Pooling layers always prefer CHWN (Section IV.B: their access pattern makes
NCHW strided regardless of configuration).  The thresholds are properties
of the GPU, recovered once per device by :mod:`repro.core.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..layers.base import ConvSpec, PoolSpec
from ..tensors.layout import CHWN, NCHW, DataLayout


@dataclass(frozen=True)
class LayoutThresholds:
    """Device-specific (Ct, Nt) pair."""

    ct: int
    nt: int

    def __post_init__(self) -> None:
        if self.ct <= 0 or self.nt <= 0:
            raise ValueError("thresholds must be positive")


#: Thresholds the paper reports for its two GPUs.  Our calibration sweep
#: (``repro.core.calibration``) recovers equivalent values from the model —
#: see EXPERIMENTS.md for the comparison.
PAPER_THRESHOLDS: dict[str, LayoutThresholds] = {
    "GTX Titan Black": LayoutThresholds(ct=32, nt=128),
    "GTX Titan X": LayoutThresholds(ct=128, nt=64),
}


def thresholds_for(device: DeviceSpec) -> LayoutThresholds:
    """Thresholds for a device, defaulting to the Titan Black pair."""
    return PAPER_THRESHOLDS.get(device.name, PAPER_THRESHOLDS["GTX Titan Black"])


def preferred_conv_layout(
    spec: ConvSpec, thresholds: LayoutThresholds
) -> DataLayout:
    """Apply the paper's two-rule heuristic to a convolution layer."""
    if spec.ci < thresholds.ct:
        return CHWN
    if spec.n >= thresholds.nt:
        return CHWN
    return NCHW


def preferred_pool_layout(spec: PoolSpec) -> DataLayout:
    """Pooling always prefers CHWN (strided NCHW windows never coalesce)."""
    return CHWN


@dataclass(frozen=True)
class ThresholdMargins:
    """Signed distances of a conv layer from the (Ct, Nt) decision surface.

    ``c_distance = C - Ct`` and ``n_distance = N - Nt``; the static analyzer
    uses them to flag layers whose layout decision would flip under a tiny
    shape perturbation (the ambiguous region around the thresholds).
    """

    c_distance: int
    n_distance: int


def conv_threshold_margins(
    spec: ConvSpec, thresholds: LayoutThresholds
) -> ThresholdMargins:
    """How far ``spec`` sits from each heuristic threshold."""
    return ThresholdMargins(
        c_distance=spec.ci - thresholds.ct,
        n_distance=spec.n - thresholds.nt,
    )


def is_threshold_ambiguous(
    spec: ConvSpec, thresholds: LayoutThresholds, margin: int = 1
) -> bool:
    """True when a +/-``margin`` shift of C or N flips the layout choice.

    This is the precise meaning of "within the ambiguous region": the
    heuristic's answer is fragile for this layer, so the one-time profiling
    fine-tune (or a transform-cost comparison) should arbitrate rather than
    the raw rule.  Perturbing only the dimension that currently decides the
    layer avoids flagging layers that are far from their *active* rule.
    """
    base = preferred_conv_layout(spec, thresholds)
    for delta in range(-margin, margin + 1):
        if delta == 0:
            continue
        perturbed = []
        if spec.ci + delta >= 1:
            try:
                perturbed.append(spec.with_channels(spec.ci + delta))
            except ValueError:  # grouped conv: ci must stay divisible
                pass
        if spec.n + delta >= 1:
            perturbed.append(spec.with_batch(spec.n + delta))
        if any(preferred_conv_layout(p, thresholds) != base for p in perturbed):
            return True
    return False


def explain_conv_choice(spec: ConvSpec, thresholds: LayoutThresholds) -> str:
    """Human-readable rationale, used by the CLI's ``plan`` command."""
    if spec.ci < thresholds.ct:
        return (
            f"C={spec.ci} < Ct={thresholds.ct}: matrix-expansion cost of NCHW "
            "is not amortized -> CHWN"
        )
    if spec.n >= thresholds.nt:
        return (
            f"N={spec.n} >= Nt={thresholds.nt}: batch wide enough for "
            "coalescing + register reuse -> CHWN"
        )
    return (
        f"C={spec.ci} >= Ct={thresholds.ct} and N={spec.n} < Nt={thresholds.nt}: "
        "merged-GEMM efficiency wins -> NCHW"
    )
