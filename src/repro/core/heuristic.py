"""The paper's light-weight data-layout selection heuristic (Section IV.A).

For a convolutional layer:

1. if ``C < Ct`` the CHWN layout is preferred (the NCHW path's matrix
   expansion cost is not amortized by a short GEMM reduction);
2. else if ``N >= Nt`` CHWN is still preferred (the batch dimension is wide
   enough for both coalescing and per-thread register reuse);
3. otherwise NCHW is preferred.

Pooling layers always prefer CHWN (Section IV.B: their access pattern makes
NCHW strided regardless of configuration).  The thresholds are properties
of the GPU, recovered once per device by :mod:`repro.core.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..layers.base import ConvSpec, PoolSpec
from ..tensors.layout import CHWN, NCHW, DataLayout


@dataclass(frozen=True)
class LayoutThresholds:
    """Device-specific (Ct, Nt) pair."""

    ct: int
    nt: int

    def __post_init__(self) -> None:
        if self.ct <= 0 or self.nt <= 0:
            raise ValueError("thresholds must be positive")


#: Thresholds the paper reports for its two GPUs.  Our calibration sweep
#: (``repro.core.calibration``) recovers equivalent values from the model —
#: see EXPERIMENTS.md for the comparison.
PAPER_THRESHOLDS: dict[str, LayoutThresholds] = {
    "GTX Titan Black": LayoutThresholds(ct=32, nt=128),
    "GTX Titan X": LayoutThresholds(ct=128, nt=64),
}


def thresholds_for(device: DeviceSpec) -> LayoutThresholds:
    """Thresholds for a device, defaulting to the Titan Black pair."""
    return PAPER_THRESHOLDS.get(device.name, PAPER_THRESHOLDS["GTX Titan Black"])


def preferred_conv_layout(
    spec: ConvSpec, thresholds: LayoutThresholds
) -> DataLayout:
    """Apply the paper's two-rule heuristic to a convolution layer."""
    if spec.ci < thresholds.ct:
        return CHWN
    if spec.n >= thresholds.nt:
        return CHWN
    return NCHW


def preferred_pool_layout(spec: PoolSpec) -> DataLayout:
    """Pooling always prefers CHWN (strided NCHW windows never coalesce)."""
    return CHWN


def explain_conv_choice(spec: ConvSpec, thresholds: LayoutThresholds) -> str:
    """Human-readable rationale, used by the CLI's ``plan`` command."""
    if spec.ci < thresholds.ct:
        return (
            f"C={spec.ci} < Ct={thresholds.ct}: matrix-expansion cost of NCHW "
            "is not amortized -> CHWN"
        )
    if spec.n >= thresholds.nt:
        return (
            f"N={spec.n} >= Nt={thresholds.nt}: batch wide enough for "
            "coalescing + register reuse -> CHWN"
        )
    return (
        f"C={spec.ci} >= Ct={thresholds.ct} and N={spec.n} < Nt={thresholds.nt}: "
        "merged-GEMM efficiency wins -> NCHW"
    )
