"""The paper's contribution: layout heuristics, calibration, planning,
pooling auto-tuning, and softmax kernel fusion."""

from .autotune import TuneResult, autotune_pooling
from .calibration import (
    C_SWEEP,
    CalibrationResult,
    N_SWEEP,
    REFERENCE_SHAPE,
    SweepPoint,
    calibrate,
)
from .fusion import FusionReport, can_fuse_softmax, fuse_softmax, fusion_report
from .heuristic import (
    LayoutThresholds,
    PAPER_THRESHOLDS,
    ThresholdMargins,
    conv_threshold_margins,
    explain_conv_choice,
    is_threshold_ambiguous,
    preferred_conv_layout,
    preferred_pool_layout,
    thresholds_for,
)
from .planner import (
    LayoutPlan,
    NodeKind,
    PlanNode,
    PlanStep,
    plan_optimal,
    plan_single_layout,
    plan_with_heuristic,
)
from .selector import (
    ConvChoice,
    LAYOUT_IMPLEMENTATIONS,
    POOL_LAYOUT_IMPLEMENTATIONS,
    best_conv_for_layout,
    cudnn_mode_conv,
    try_conv_time,
)

__all__ = [
    "C_SWEEP",
    "CalibrationResult",
    "ConvChoice",
    "FusionReport",
    "LAYOUT_IMPLEMENTATIONS",
    "LayoutPlan",
    "LayoutThresholds",
    "N_SWEEP",
    "NodeKind",
    "PAPER_THRESHOLDS",
    "POOL_LAYOUT_IMPLEMENTATIONS",
    "PlanNode",
    "PlanStep",
    "REFERENCE_SHAPE",
    "SweepPoint",
    "ThresholdMargins",
    "TuneResult",
    "autotune_pooling",
    "best_conv_for_layout",
    "calibrate",
    "can_fuse_softmax",
    "conv_threshold_margins",
    "cudnn_mode_conv",
    "explain_conv_choice",
    "fuse_softmax",
    "fusion_report",
    "is_threshold_ambiguous",
    "plan_optimal",
    "plan_single_layout",
    "plan_with_heuristic",
    "preferred_conv_layout",
    "preferred_pool_layout",
    "thresholds_for",
    "try_conv_time",
]
