"""Kernel fusion pass for the softmax layer (Section V.B).

The pass takes the five-kernel baseline and applies the paper's two
transformations in order:

1. **fuse** — the five step kernels share a thread-block configuration, so
   they merge into one kernel whose inter-step traffic moves to shared
   memory/registers (eliminating four round trips through DRAM and four
   kernel launches);
2. **parallelize inner loops** — inject threads across the category axis,
   turning the two reductions into shared-memory tree reductions and the
   element-wise steps into coalesced streams.

Each stage is available separately so the Fig. 13 ablation ("kernel fusion
has contributed up to 3.53x ... more threads further bring an average
speedup of 5.13x") can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel
from ..gpusim.session import SimulationContext, default_context
from ..layers.base import SoftmaxSpec
from ..layers.softmax_kernels import (
    FusedParallelSoftmax,
    FusedSoftmax,
    five_kernel_softmax,
)


@dataclass(frozen=True)
class FusionReport:
    """What the pass did and what it bought, per stage."""

    spec: SoftmaxSpec
    baseline_ms: float
    fused_ms: float
    parallel_ms: float
    launches_removed: int
    dram_passes_removed: int

    @property
    def fusion_speedup(self) -> float:
        return self.baseline_ms / self.fused_ms if self.fused_ms else 0.0

    @property
    def parallel_speedup(self) -> float:
        """Extra speedup from thread injection, on top of fusion."""
        return self.fused_ms / self.parallel_ms if self.parallel_ms else 0.0

    @property
    def total_speedup(self) -> float:
        return self.baseline_ms / self.parallel_ms if self.parallel_ms else 0.0


def can_fuse_softmax(spec: SoftmaxSpec, device: DeviceSpec) -> bool:
    """The paper's fused kernel needs the reduction scratch to fit shared
    memory; the streamed-tile variant lifts the row-size limit, so only
    degenerate devices refuse."""
    return device.smem_per_block_max >= 8 * 1024


def fuse_softmax(
    spec: SoftmaxSpec, device: DeviceSpec, parallelize: bool = True
) -> KernelModel:
    """Build the fused (optionally inner-parallelized) softmax kernel."""
    if not can_fuse_softmax(spec, device):
        return five_kernel_softmax(spec)
    return FusedParallelSoftmax(spec) if parallelize else FusedSoftmax(spec)


def fusion_report(
    spec: SoftmaxSpec, device: DeviceSpec, context: SimulationContext | None = None
) -> FusionReport:
    """Apply the pass stage by stage and measure each stage's effect."""
    engine = (context or default_context(device)).engine(check_memory=False)
    chain = five_kernel_softmax(spec)
    baseline = engine.run(chain)
    fused = engine.run(FusedSoftmax(spec))
    parallel = engine.run(FusedParallelSoftmax(spec))
    # Each interior step boundary costs one spill (the producer stores its
    # output) and one reload (the consumer re-reads it) through DRAM; fusion
    # keeps that traffic in shared memory/registers.  Derived from the actual
    # chain so shortened softmax variants report truthfully (the default
    # five-kernel chain has 4 boundaries -> 8 passes).
    boundaries = len(chain.kernels) - 1
    return FusionReport(
        spec=spec,
        baseline_ms=baseline.time_ms,
        fused_ms=fused.time_ms,
        parallel_ms=parallel.time_ms,
        launches_removed=baseline.n_launches - 1,
        dram_passes_removed=2 * boundaries,
    )
