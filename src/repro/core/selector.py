"""Per-layer implementation selection.

Two selection problems appear in the paper:

* **within a layout** — "for every data layout there is a preferred
  optimized implementation" (Section IV.D): direct convolution for CHWN;
  MM or FFT for NCHW.  :func:`best_conv_for_layout` picks among the valid
  implementations by simulated time, falling back exactly like the paper's
  cuDNN modes ("falls back to the cuDNN-MM mode if failed").
* **across cuDNN modes** — the ``cuDNN-Best`` scheme cherry-picks the
  fastest NCHW mode per layer (Section VI.C).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpusim.engine import GpuOutOfMemoryError, SimulationEngine
from ..gpusim.kernel import KernelModel
from ..gpusim.session import SimulationContext
from ..layers.base import ConvSpec
from ..layers.conv_kernels import ConvUnsupportedError, make_conv_kernel
from ..tensors.layout import CHWN, NCHW, NHWC, DataLayout

#: Selection routines accept either an engine view or a bare session —
#: both expose ``run`` against a shared structural timing cache.
Simulator = SimulationEngine | SimulationContext

#: Implementations valid per layout (Section IV.D).  NHWC exists only via
#: cuDNN's repack-to-NCHW path (paper footnote 1), so it never wins — it is
#: kept for the footnote-reproduction test and exploratory planning.
LAYOUT_IMPLEMENTATIONS: dict[str, tuple[str, ...]] = {
    str(CHWN): ("direct",),
    str(NCHW): ("im2col", "fft", "fft-tiled"),
    str(NHWC): ("im2col-nhwc",),
}

#: Pooling implementations valid per layout, the pooling twin of
#: :data:`LAYOUT_IMPLEMENTATIONS` (Section IV.B: a register-coarsened CHWN
#: kernel vs the two channel-major fallbacks).  The static analyzer uses
#: both maps to reject plans whose implementation family contradicts the
#: assigned layout.
POOL_LAYOUT_IMPLEMENTATIONS: dict[str, tuple[str, ...]] = {
    str(CHWN): ("chwn", "chwn-coarsened"),
    str(NCHW): ("nchw-linear", "nchw-rowblock"),
}


@dataclass(frozen=True)
class ConvChoice:
    """The selected implementation for a conv layer under a layout."""

    layout: DataLayout
    implementation: str
    time_ms: float
    kernel: KernelModel

    def __str__(self) -> str:
        return f"{self.layout}/{self.implementation} ({self.time_ms:.3f} ms)"


def try_conv_time(
    engine: Simulator, spec: ConvSpec, implementation: str
) -> tuple[float, KernelModel] | None:
    """Simulated time for one implementation, or None if it cannot run
    (unsupported configuration or device OOM)."""
    try:
        kernel = make_conv_kernel(spec, implementation)
        stats = engine.run(kernel)
    except (ConvUnsupportedError, GpuOutOfMemoryError):
        return None
    return stats.time_ms, kernel


def best_conv_for_layout(
    engine: Simulator,
    spec: ConvSpec,
    layout: DataLayout,
    allow_fft: bool = True,
) -> ConvChoice:
    """Fastest valid implementation of ``spec`` under ``layout``."""
    key = str(layout)
    if key not in LAYOUT_IMPLEMENTATIONS:
        raise ValueError(
            f"no convolution implementation is tuned for layout {layout}; "
            f"supported: {sorted(LAYOUT_IMPLEMENTATIONS)}"
        )
    candidates = LAYOUT_IMPLEMENTATIONS[key]
    if not allow_fft:
        candidates = tuple(c for c in candidates if not c.startswith("fft"))
    best: ConvChoice | None = None
    for impl in candidates:
        result = try_conv_time(engine, spec, impl)
        if result is None:
            continue
        time_ms, kernel = result
        if best is None or time_ms < best.time_ms:
            best = ConvChoice(layout, impl, time_ms, kernel)
    if best is None:
        raise ConvUnsupportedError(
            f"no implementation for layout {layout} can run {spec}"
        )
    return best


def cudnn_mode_conv(
    engine: Simulator, spec: ConvSpec, mode: str
) -> ConvChoice:
    """Model one cuDNN execution mode with MM fallback.

    ``mode`` is ``mm``, ``fft``, ``fft-tiled`` or ``best``.
    """
    if mode == "best":
        return best_conv_for_layout(engine, spec, NCHW, allow_fft=True)
    impl = {"mm": "im2col", "fft": "fft", "fft-tiled": "fft-tiled"}.get(mode)
    if impl is None:
        raise ValueError(f"unknown cuDNN mode {mode!r}")
    result = try_conv_time(engine, spec, impl)
    if result is None:  # fall back to MM, as the paper's schemes do
        result = try_conv_time(engine, spec, "im2col")
        impl = "im2col"
    if result is None:
        raise ConvUnsupportedError(f"cuDNN fallback failed for {spec}")
    time_ms, kernel = result
    return ConvChoice(NCHW, impl, time_ms, kernel)
