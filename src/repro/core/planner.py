"""Network-level layout planning (Section IV.D).

The planner assigns a storage layout to every conv/pool layer, inserting
layout transformations where consecutive layers disagree, and weighing each
transform's cost against the layout's benefit — the paper's "one-time
profiling can be applied to fine tune the data layout settings
automatically".

Two planners are provided:

* :func:`plan_with_heuristic` — apply the (Ct, Nt) rules per layer, then
  drop any transform whose cost exceeds the layout benefit it enables
  (the paper's fine-tuning step, e.g. keeping CV5/CV9 in the surrounding
  layout because their preference is worth less than the transpose).
* :func:`plan_optimal` — dynamic programming over the layer chain, the
  exhaustive version of the same trade-off.  Used in tests to prove the
  heuristic plan is near-optimal and in the ``Opt`` whole-network scheme.

Both public planners are now thin compatibility wrappers over the pass
pipeline (``repro.core.pipeline``), which generalizes the same algorithms
from chains to DAGs; prefer :func:`repro.core.pipeline.run_pipeline` in
new code.  The original chain implementations are retained as
``_legacy_plan_with_heuristic``/``_legacy_plan_optimal`` so the golden
equivalence tests can prove the pipeline reproduces them exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpusim.device import DeviceSpec
from ..gpusim.engine import SimulationEngine
from ..gpusim.session import SimulationContext, default_context
from ..ir.graph import NodeKind
from ..layers.base import ConvSpec, PoolSpec, SoftmaxSpec
from ..layers.softmax_kernels import make_softmax_kernel
from ..tensors.layout import CHWN, NCHW, DataLayout
from ..tensors.tensor import TensorDesc
from ..tensors.transform_kernels import transform_time_ms
from .autotune import autotune_pooling
from .heuristic import (
    LayoutThresholds,
    preferred_conv_layout,
    preferred_pool_layout,
    thresholds_for,
)
from .selector import best_conv_for_layout

PLAN_LAYOUTS: tuple[DataLayout, ...] = (CHWN, NCHW)

# NodeKind now lives in the IR (repro.ir.graph), which adds the CONCAT
# member for DAG joins; imported above and re-exported for compatibility.


@dataclass(frozen=True)
class PlanNode:
    """One layer as the planner sees it."""

    name: str
    kind: NodeKind
    spec: object | None = None  # ConvSpec | PoolSpec | SoftmaxSpec | None
    #: fixed per-layer time for kinds whose cost does not depend on layout
    fixed_ms: float = 0.0
    #: logical input tensor dims (N, C, H, W) — what a transform would move
    in_dims: tuple[int, int, int, int] | None = None


@dataclass(frozen=True)
class PlanStep:
    """Planner output for one layer."""

    name: str
    kind: NodeKind
    layout: DataLayout | None
    implementation: str
    layer_ms: float
    transform_ms: float = 0.0
    coarsening: tuple[int, int] | None = None
    #: producer layout this step transforms away from (None when the input
    #: already arrives in this step's layout) — makes the plan IR
    #: self-describing for the static analyzer
    transformed_from: DataLayout | None = None
    #: layout the transform produces.  Matters for layout-agnostic steps
    #: (LRN, elementwise) whose own ``layout`` is masked to None but which
    #: can still host a boundary transform on the way to the next layer
    transformed_to: DataLayout | None = None

    @property
    def total_ms(self) -> float:
        return self.layer_ms + self.transform_ms


@dataclass(frozen=True)
class LayoutPlan:
    """A complete layout assignment for a network."""

    steps: tuple[PlanStep, ...]
    device: str
    strategy: str

    @property
    def total_ms(self) -> float:
        return sum(s.total_ms for s in self.steps)

    @property
    def transform_count(self) -> int:
        return sum(1 for s in self.steps if s.transform_ms > 0)

    @property
    def transform_ms(self) -> float:
        return sum(s.transform_ms for s in self.steps)

    def layout_steps(self) -> tuple[PlanStep, ...]:
        """The layout-bearing (conv/pool) steps, in execution order."""
        return tuple(s for s in self.steps if s.layout is not None)

    def summary(self) -> str:
        lines = [f"plan[{self.strategy}] on {self.device}: {self.total_ms:.3f} ms"]
        for s in self.steps:
            layout = str(s.layout) if s.layout else "-"
            extra = f" (+transform {s.transform_ms:.3f} ms)" if s.transform_ms else ""
            lines.append(
                f"  {s.name:12s} {s.kind.value:12s} {layout:5s} "
                f"{s.implementation:16s} {s.layer_ms:8.3f} ms{extra}"
            )
        return "\n".join(lines)


@dataclass
class _LayerCosts:
    """Per-layout cost and chosen implementation for one node."""

    node: PlanNode
    per_layout: dict[str, tuple[float, str, tuple[int, int] | None]] = field(
        default_factory=dict
    )

    def cost(self, layout: DataLayout) -> float:
        return self.per_layout[str(layout)][0]

    def choice(self, layout: DataLayout) -> tuple[float, str, tuple[int, int] | None]:
        return self.per_layout[str(layout)]


def _node_costs(
    engine: SimulationEngine,
    node: PlanNode,
    device: DeviceSpec,
    tune_pooling: bool,
    allow_fft: bool,
    layouts: tuple[DataLayout, ...] = PLAN_LAYOUTS,
) -> _LayerCosts:
    costs = _LayerCosts(node)
    if node.kind is NodeKind.CONV:
        assert isinstance(node.spec, ConvSpec)
        for layout in layouts:
            choice = best_conv_for_layout(engine, node.spec, layout, allow_fft=allow_fft)
            costs.per_layout[str(layout)] = (choice.time_ms, choice.implementation, None)
    elif node.kind is NodeKind.POOL:
        assert isinstance(node.spec, PoolSpec)
        from ..layers.pooling_kernels import make_pool_kernel

        if tune_pooling:
            tuned = autotune_pooling(device, node.spec, context=engine.context)
            coarsen = (tuned.ux, tuned.uy)
            chwn_ms = tuned.time_ms
            impl = (
                "chwn-coarsened" if coarsen != (1, 1) else "chwn"
            )
        else:
            chwn_ms = engine.run(make_pool_kernel(node.spec, "chwn")).time_ms
            coarsen, impl = None, "chwn"
        costs.per_layout[str(CHWN)] = (chwn_ms, impl, coarsen)
        # When a pool stays out of CHWN (transform not worth it), the
        # framework still picks the faster of the available channel-major
        # kernels; every non-CHWN layout shares that pattern in the model.
        nchw_ms, nchw_impl = min(
            (engine.run(make_pool_kernel(node.spec, impl_name)).time_ms, impl_name)
            for impl_name in ("nchw-linear", "nchw-rowblock")
        )
        for layout in layouts:
            if layout != CHWN:
                costs.per_layout[str(layout)] = (nchw_ms, nchw_impl, None)
    elif node.kind is NodeKind.ELEMENTWISE:
        for layout in layouts:
            costs.per_layout[str(layout)] = (node.fixed_ms, "elementwise", None)
    else:  # CLASSIFIER
        if isinstance(node.spec, SoftmaxSpec):
            ms = engine.run(make_softmax_kernel(node.spec, "opt")).time_ms
            impl = "softmax-opt"
        else:
            ms, impl = node.fixed_ms, "gemm"
        for layout in layouts:
            costs.per_layout[str(layout)] = (ms, impl, None)
    return costs


def _transform_ms(
    device: DeviceSpec,
    node: PlanNode,
    src: DataLayout,
    dst: DataLayout,
) -> float:
    if src == dst or node.in_dims is None:
        return 0.0
    if node.kind is NodeKind.CLASSIFIER:
        return 0.0  # flattening erases the 4-D layout; no transform needed
    desc = TensorDesc(*node.in_dims, layout=src)
    return transform_time_ms(device, desc, dst, method="auto")


def _build_costs(
    device: DeviceSpec,
    nodes: list[PlanNode],
    tune_pooling: bool,
    allow_fft: bool,
    layouts: tuple[DataLayout, ...] = PLAN_LAYOUTS,
    context: SimulationContext | None = None,
) -> list[_LayerCosts]:
    engine = (context or default_context(device)).engine(check_memory=False)
    return [
        _node_costs(engine, node, device, tune_pooling, allow_fft, layouts)
        for node in nodes
    ]


def _assemble(
    device: DeviceSpec,
    nodes: list[PlanNode],
    costs: list[_LayerCosts],
    layouts: list[DataLayout],
    strategy: str,
) -> LayoutPlan:
    steps: list[PlanStep] = []
    prev = layouts[0]
    for node, cost, layout in zip(nodes, costs, layouts):
        t_ms = _transform_ms(device, node, prev, layout)
        layer_ms, impl, coarsen = cost.choice(layout)
        effective = layout if node.kind in (NodeKind.CONV, NodeKind.POOL) else None
        steps.append(
            PlanStep(
                name=node.name,
                kind=node.kind,
                layout=effective,
                implementation=impl,
                layer_ms=layer_ms,
                transform_ms=t_ms,
                coarsening=coarsen,
                transformed_from=prev if t_ms > 0 else None,
                transformed_to=layout if t_ms > 0 else None,
            )
        )
        if node.kind is not NodeKind.CLASSIFIER:
            prev = layout
    return LayoutPlan(steps=tuple(steps), device=device.name, strategy=strategy)


def plan_single_layout(
    device: DeviceSpec,
    nodes: list[PlanNode],
    layout: DataLayout,
    tune_pooling: bool = False,
    allow_fft: bool = True,
    strategy: str | None = None,
    context: SimulationContext | None = None,
) -> LayoutPlan:
    """Cost of running the whole network in one fixed layout (the existing
    libraries' behaviour)."""
    costs = _build_costs(device, nodes, tune_pooling, allow_fft, context=context)
    layouts = [layout] * len(nodes)
    return _assemble(
        device, nodes, costs, layouts, strategy or f"single-{layout}"
    )


def plan_with_heuristic(
    device: DeviceSpec,
    nodes: list[PlanNode],
    thresholds: LayoutThresholds | None = None,
    tune_pooling: bool = True,
    allow_fft: bool = True,
    context: SimulationContext | None = None,
) -> LayoutPlan:
    """The paper's mechanism: per-layer (Ct, Nt) rules + transform-cost
    fine-tuning.

    Compatibility wrapper: lowers the chain to the graph IR and runs the
    pass pipeline (``AssignLayouts`` replays the exact algorithm below).
    Prefer :func:`repro.core.pipeline.run_pipeline` in new code.
    """
    from ..ir.build import graph_from_plan_nodes
    from .pipeline import PipelineOptions, run_pipeline

    options = PipelineOptions(
        strategy="heuristic",
        thresholds=thresholds,
        tune_pooling=tune_pooling,
        allow_fft=allow_fft,
    )
    graph = graph_from_plan_nodes(list(nodes))
    return run_pipeline(device, graph, options, context=context).plan


def _legacy_plan_with_heuristic(
    device: DeviceSpec,
    nodes: list[PlanNode],
    thresholds: LayoutThresholds | None = None,
    tune_pooling: bool = True,
    allow_fft: bool = True,
    context: SimulationContext | None = None,
) -> LayoutPlan:
    """The original chain-only implementation, kept verbatim as the golden
    reference the pipeline equivalence tests compare against.

    After the per-layer preferences are set, each *maximal run* of layers
    whose preference differs from its surroundings is kept only if its
    benefit exceeds the two transforms it would cost (this is what keeps
    tiny first-layer convolutions like CV9 in the surrounding layout).
    """
    thresholds = thresholds or thresholds_for(device)
    costs = _build_costs(device, nodes, tune_pooling, allow_fft, context=context)

    preferred: list[DataLayout] = []
    for node in nodes:
        if node.kind is NodeKind.CONV:
            assert isinstance(node.spec, ConvSpec)
            preferred.append(preferred_conv_layout(node.spec, thresholds))
        elif node.kind is NodeKind.POOL:
            assert isinstance(node.spec, PoolSpec)
            preferred.append(preferred_pool_layout(node.spec))
        else:
            preferred.append(preferred[-1] if preferred else CHWN)

    # Fine-tune: flatten a run of same-preference layers into a neighbouring
    # layout when the run's benefit does not pay for its boundary transforms.
    layouts = list(preferred)
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(layouts):
            j = i
            while j < len(layouts) and layouts[j] == layouts[i]:
                j += 1
            current = layouts[i]
            prev_l = layouts[i - 1] if i > 0 else None
            next_l = layouts[j] if j < len(layouts) else None
            alt = prev_l if (prev_l is not None and prev_l != current) else (
                next_l if (next_l is not None and next_l != current) else None
            )
            if alt is not None:
                keep_cost = sum(costs[k].cost(current) for k in range(i, j))
                if prev_l is not None and prev_l != current:
                    keep_cost += _transform_ms(device, nodes[i], prev_l, current)
                if next_l is not None and next_l != current:
                    keep_cost += _transform_ms(device, nodes[j], current, next_l)
                flat_cost = sum(costs[k].cost(alt) for k in range(i, j))
                if prev_l is not None and prev_l != alt:
                    flat_cost += _transform_ms(device, nodes[i], prev_l, alt)
                if next_l is not None and next_l != alt:
                    flat_cost += _transform_ms(device, nodes[j], alt, next_l)
                if flat_cost < keep_cost:
                    for k in range(i, j):
                        layouts[k] = alt
                    changed = True
            i = j
    return _assemble(device, nodes, costs, layouts, "heuristic")


def plan_optimal(
    device: DeviceSpec,
    nodes: list[PlanNode],
    tune_pooling: bool = True,
    allow_fft: bool = True,
    layouts: tuple[DataLayout, ...] = PLAN_LAYOUTS,
    context: SimulationContext | None = None,
) -> LayoutPlan:
    """Dynamic program over (layer, layout) states — minimal total time
    including transforms.

    ``layouts`` widens the search space beyond the default {CHWN, NCHW}
    pair (e.g. to include NHWC); every candidate layout needs a registered
    convolution implementation family.

    Compatibility wrapper over the pass pipeline (``AssignLayouts`` runs
    the exact DP below on chains and generalizes it to DAGs).  Prefer
    :func:`repro.core.pipeline.run_pipeline` in new code.
    """
    if not layouts:
        raise ValueError("need at least one candidate layout")
    from ..ir.build import graph_from_plan_nodes
    from .pipeline import PipelineOptions, run_pipeline

    options = PipelineOptions(
        strategy="optimal",
        tune_pooling=tune_pooling,
        allow_fft=allow_fft,
        layouts=tuple(layouts),
    )
    graph = graph_from_plan_nodes(list(nodes))
    return run_pipeline(device, graph, options, context=context).plan


def _legacy_plan_optimal(
    device: DeviceSpec,
    nodes: list[PlanNode],
    tune_pooling: bool = True,
    allow_fft: bool = True,
    layouts: tuple[DataLayout, ...] = PLAN_LAYOUTS,
    context: SimulationContext | None = None,
) -> LayoutPlan:
    """The original chain-only DP, kept verbatim as the golden reference
    the pipeline equivalence tests compare against."""
    if not layouts:
        raise ValueError("need at least one candidate layout")
    costs = _build_costs(device, nodes, tune_pooling, allow_fft, layouts, context)
    n = len(nodes)
    if n == 0:
        return LayoutPlan(steps=(), device=device.name, strategy="optimal")

    best: list[dict[str, float]] = [dict() for _ in range(n)]
    back: list[dict[str, str]] = [dict() for _ in range(n)]
    for layout in layouts:
        best[0][str(layout)] = costs[0].cost(layout)
    for i in range(1, n):
        for layout in layouts:
            options = []
            for prev in layouts:
                t = _transform_ms(device, nodes[i], prev, layout)
                options.append((best[i - 1][str(prev)] + t + costs[i].cost(layout), str(prev)))
            cost, prev_key = min(options)
            best[i][str(layout)] = cost
            back[i][str(layout)] = prev_key

    final = min(layouts, key=lambda lo: best[n - 1][str(lo)])
    layouts = [final]
    for i in range(n - 1, 0, -1):
        layouts.append(DataLayout(back[i][str(layouts[-1])]))
    layouts.reverse()
    return _assemble(device, nodes, costs, layouts, "optimal")
