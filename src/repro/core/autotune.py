"""Hill-climbing auto-tuner for pooling thread coarsening (Section V.A).

"With an initial factor of 2, the expansion factor continues to increase
linearly if the performance improves.  Otherwise it stops as further
expansion leads to high register pressure thus limiting the TLP."

The tuner climbs each direction (ux along W, uy along H) alternately; the
cost function is the simulated kernel time, in which larger tiles cut DRAM
traffic (shared window footprints) but raise register pressure and so
reduce occupancy — the exact trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gpusim.batch import batched_eval_enabled
from ..gpusim.device import DeviceSpec
from ..gpusim.engine import SimulationEngine
from ..gpusim.exec import evaluate_cells, map_chunks
from ..gpusim.parallel import parallel_map
from ..gpusim.session import SimulationContext, default_context
from ..gpusim.timing import KernelStats
from ..layers.base import PoolSpec
from ..layers.pooling_kernels import PoolingCHWN, PoolingCoarsenedCHWN


@dataclass(frozen=True)
class TuneResult:
    """Chosen expansion factors and the search trace."""

    ux: int
    uy: int
    time_ms: float
    baseline_ms: float
    evaluations: tuple[tuple[int, int, float], ...]

    @property
    def speedup(self) -> float:
        """Improvement over the un-coarsened CHWN kernel."""
        return self.baseline_ms / self.time_ms if self.time_ms else 0.0


def _time(engine: SimulationEngine, spec: PoolSpec, ux: int, uy: int) -> float:
    if (ux, uy) == (1, 1):
        return engine.run(PoolingCHWN(spec)).time_ms
    return engine.run(PoolingCoarsenedCHWN(spec, ux=ux, uy=uy)).time_ms


def autotune_pooling(
    device: DeviceSpec,
    spec: PoolSpec,
    max_factor: int = 8,
    initial: int = 2,
    context: SimulationContext | None = None,
) -> TuneResult:
    """Hill-climb (ux, uy) for one pooling layer.

    Starts from the paper's initial factor of 2 in each direction, grows one
    direction at a time while the simulated time improves, and stops on the
    first regression (the pruning heuristic of Section V.A).  Falls back to
    (1, 1) — the plain kernel — when no expansion helps, which is what
    happens for non-overlapped pooling where there is no shared data to
    reuse.
    """
    if max_factor < 1 or initial < 1:
        raise ValueError("factors must be at least 1")
    engine = (context or default_context(device)).engine(check_memory=False)
    trace: list[tuple[int, int, float]] = []

    baseline = _time(engine, spec, 1, 1)
    trace.append((1, 1, baseline))

    best_u = (1, 1)
    best_t = baseline
    start = _time(engine, spec, initial, initial)
    trace.append((initial, initial, start))
    if start < best_t:
        best_u, best_t = (initial, initial), start

        improving = True
        while improving:
            improving = False
            for dim in (0, 1):
                candidate = list(best_u)
                candidate[dim] = min(max_factor, candidate[dim] + 1)
                cand = (candidate[0], candidate[1])
                if cand == best_u:
                    continue
                t = _time(engine, spec, *cand)
                trace.append((*cand, t))
                if t < best_t:
                    best_u, best_t = cand, t
                    improving = True
                # else: stop climbing this direction (hill-climb pruning)

    return TuneResult(
        ux=best_u[0],
        uy=best_u[1],
        time_ms=best_t,
        baseline_ms=baseline,
        evaluations=tuple(trace),
    )


def _tune_task(
    context: SimulationContext, task: tuple[PoolSpec, int, int]
) -> TuneResult:
    spec, max_factor, initial = task
    return autotune_pooling(
        context.device, spec, max_factor=max_factor, initial=initial, context=context
    )


@dataclass
class _ClimbState:
    """One spec's position in the lockstep hill-climb."""

    spec: PoolSpec
    max_factor: int
    trace: list[tuple[int, int, float]]
    baseline: float = 0.0
    best_u: tuple[int, int] = (1, 1)
    best_t: float = 0.0
    improving: bool = False


def _batch_times(
    context: SimulationContext, requests: list[tuple[PoolSpec, tuple[int, int]]]
) -> list[float]:
    """Vectorized, memoized ``_time`` over (spec, (ux, uy)) pairs."""
    models = [
        PoolingCHWN(spec) if u == (1, 1) else PoolingCoarsenedCHWN(spec, ux=u[0], uy=u[1])
        for spec, u in requests
    ]
    times = []
    for outcome in evaluate_cells(context, models, check_memory=False):
        if isinstance(outcome, Exception):
            raise outcome
        assert isinstance(outcome, KernelStats)
        times.append(outcome.time_ms)
    return times


def _tune_chunk(
    context: SimulationContext, tasks: list[tuple[PoolSpec, int, int]]
) -> list[TuneResult]:
    """Tune a chunk of pooling layers in lockstep.

    Each hill-climb is sequential, but at every step all chunk members'
    pending evaluations batch into one vectorized call.  The per-spec
    evaluation order — baseline, start, then (ux, uy) proposals per round —
    matches :func:`autotune_pooling` exactly, so traces and results are
    identical to the scalar tuner.
    """
    for _, max_factor, initial in tasks:
        if max_factor < 1 or initial < 1:
            raise ValueError("factors must be at least 1")

    states = [_ClimbState(spec, max_factor, []) for spec, max_factor, _ in tasks]
    baselines = _batch_times(context, [(s.spec, (1, 1)) for s in states])
    for state, t in zip(states, baselines):
        state.baseline = state.best_t = t
        state.trace.append((1, 1, t))

    starts = _batch_times(
        context, [(s.spec, (initial, initial)) for s, (_, _, initial) in zip(states, tasks)]
    )
    active: list[_ClimbState] = []
    for state, (_, _, initial), t in zip(states, tasks, starts):
        state.trace.append((initial, initial, t))
        if t < state.best_t:
            state.best_u, state.best_t = (initial, initial), t
            active.append(state)

    while active:
        for state in active:
            state.improving = False
        for dim in (0, 1):
            proposals: list[tuple[_ClimbState, tuple[int, int]]] = []
            for state in active:
                candidate = list(state.best_u)
                candidate[dim] = min(state.max_factor, candidate[dim] + 1)
                cand = (candidate[0], candidate[1])
                if cand != state.best_u:
                    proposals.append((state, cand))
            if not proposals:
                continue
            times = _batch_times(context, [(s.spec, u) for s, u in proposals])
            for (state, cand), t in zip(proposals, times):
                state.trace.append((*cand, t))
                if t < state.best_t:
                    state.best_u, state.best_t = cand, t
                    state.improving = True
        active = [s for s in active if s.improving]

    return [
        TuneResult(
            ux=s.best_u[0],
            uy=s.best_u[1],
            time_ms=s.best_t,
            baseline_ms=s.baseline,
            evaluations=tuple(s.trace),
        )
        for s in states
    ]


def autotune_pooling_many(
    device: DeviceSpec,
    specs: Sequence[PoolSpec],
    max_factor: int = 8,
    initial: int = 2,
    context: SimulationContext | None = None,
    jobs: int | str | None = None,
) -> list[TuneResult]:
    """Tune several pooling layers, optionally across worker processes.

    One hill-climb is inherently sequential (each step depends on the
    previous timing), so the parallel axis is the *layer list* — exactly the
    shape of the Fig. 12 benchmark.  Results are identical to calling
    :func:`autotune_pooling` per spec in order, for any ``jobs``.
    """
    ctx = context or default_context(device)
    tasks = [(spec, max_factor, initial) for spec in specs]
    if batched_eval_enabled():
        return map_chunks(_tune_chunk, tasks, ctx, jobs=jobs)
    return parallel_map(_tune_task, tasks, ctx, jobs=jobs)
