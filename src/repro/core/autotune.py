"""Hill-climbing auto-tuner for pooling thread coarsening (Section V.A).

"With an initial factor of 2, the expansion factor continues to increase
linearly if the performance improves.  Otherwise it stops as further
expansion leads to high register pressure thus limiting the TLP."

The tuner climbs each direction (ux along W, uy along H) alternately; the
cost function is the simulated kernel time, in which larger tiles cut DRAM
traffic (shared window footprints) but raise register pressure and so
reduce occupancy — the exact trade-off the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gpusim.device import DeviceSpec
from ..gpusim.engine import SimulationEngine
from ..gpusim.parallel import parallel_map
from ..gpusim.session import SimulationContext, default_context
from ..layers.base import PoolSpec
from ..layers.pooling_kernels import PoolingCHWN, PoolingCoarsenedCHWN


@dataclass(frozen=True)
class TuneResult:
    """Chosen expansion factors and the search trace."""

    ux: int
    uy: int
    time_ms: float
    baseline_ms: float
    evaluations: tuple[tuple[int, int, float], ...]

    @property
    def speedup(self) -> float:
        """Improvement over the un-coarsened CHWN kernel."""
        return self.baseline_ms / self.time_ms if self.time_ms else 0.0


def _time(engine: SimulationEngine, spec: PoolSpec, ux: int, uy: int) -> float:
    if (ux, uy) == (1, 1):
        return engine.run(PoolingCHWN(spec)).time_ms
    return engine.run(PoolingCoarsenedCHWN(spec, ux=ux, uy=uy)).time_ms


def autotune_pooling(
    device: DeviceSpec,
    spec: PoolSpec,
    max_factor: int = 8,
    initial: int = 2,
    context: SimulationContext | None = None,
) -> TuneResult:
    """Hill-climb (ux, uy) for one pooling layer.

    Starts from the paper's initial factor of 2 in each direction, grows one
    direction at a time while the simulated time improves, and stops on the
    first regression (the pruning heuristic of Section V.A).  Falls back to
    (1, 1) — the plain kernel — when no expansion helps, which is what
    happens for non-overlapped pooling where there is no shared data to
    reuse.
    """
    if max_factor < 1 or initial < 1:
        raise ValueError("factors must be at least 1")
    engine = (context or default_context(device)).engine(check_memory=False)
    trace: list[tuple[int, int, float]] = []

    baseline = _time(engine, spec, 1, 1)
    trace.append((1, 1, baseline))

    best_u = (1, 1)
    best_t = baseline
    start = _time(engine, spec, initial, initial)
    trace.append((initial, initial, start))
    if start < best_t:
        best_u, best_t = (initial, initial), start

        improving = True
        while improving:
            improving = False
            for dim in (0, 1):
                candidate = list(best_u)
                candidate[dim] = min(max_factor, candidate[dim] + 1)
                cand = (candidate[0], candidate[1])
                if cand == best_u:
                    continue
                t = _time(engine, spec, *cand)
                trace.append((*cand, t))
                if t < best_t:
                    best_u, best_t = cand, t
                    improving = True
                # else: stop climbing this direction (hill-climb pruning)

    return TuneResult(
        ux=best_u[0],
        uy=best_u[1],
        time_ms=best_t,
        baseline_ms=baseline,
        evaluations=tuple(trace),
    )


def _tune_task(
    context: SimulationContext, task: tuple[PoolSpec, int, int]
) -> TuneResult:
    spec, max_factor, initial = task
    return autotune_pooling(
        context.device, spec, max_factor=max_factor, initial=initial, context=context
    )


def autotune_pooling_many(
    device: DeviceSpec,
    specs: Sequence[PoolSpec],
    max_factor: int = 8,
    initial: int = 2,
    context: SimulationContext | None = None,
    jobs: int | None = None,
) -> list[TuneResult]:
    """Tune several pooling layers, optionally across worker processes.

    One hill-climb is inherently sequential (each step depends on the
    previous timing), so the parallel axis is the *layer list* — exactly the
    shape of the Fig. 12 benchmark.  Results are identical to calling
    :func:`autotune_pooling` per spec in order, for any ``jobs``.
    """
    ctx = context or default_context(device)
    tasks = [(spec, max_factor, initial) for spec in specs]
    return parallel_map(_tune_task, tasks, ctx, jobs=jobs)
