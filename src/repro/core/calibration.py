"""One-time per-device threshold calibration (paper Section IV.A/IV.D).

The paper derives (Ct, Nt) from a single profiling run that sweeps N and C
on a reference convolution shape (their Fig. 4); "for each GPU architecture,
we only need one-time profiling to determine the thresholds".  Here the
profiling runs against the simulator instead of hardware: we time the best
CHWN implementation (direct convolution) and the best NCHW implementation
(im2col + GEMM) at each sweep point and locate the crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..gpusim.batch import batched_eval_enabled
from ..gpusim.device import DeviceSpec
from ..gpusim.exec import evaluate_cells, map_chunks
from ..gpusim.parallel import parallel_map
from ..gpusim.session import SimulationContext, default_context
from ..obs.tracer import span as obs_span
from ..layers.base import ConvSpec
from ..layers.conv_kernels import make_conv_kernel
from .heuristic import LayoutThresholds

#: Default sweep grids, matching the paper's Fig. 4 axes.
N_SWEEP: tuple[int, ...] = (16, 32, 64, 128, 256, 384, 512)
C_SWEEP: tuple[int, ...] = (1, 3, 16, 32, 64, 128, 256)

#: CONV7-like reference shape used by the paper for its sensitivity study
#: ("CONV7 in Table 1 is used while others show similar trends").
REFERENCE_SHAPE = ConvSpec(n=64, ci=256, h=13, w=13, co=384, fh=3, fw=3, stride=1, pad=1)


@dataclass(frozen=True)
class SweepPoint:
    """One profiling measurement: times for both layouts at a sweep value."""

    value: int
    chwn_ms: float
    nchw_ms: float

    @property
    def chwn_wins(self) -> bool:
        return self.chwn_ms <= self.nchw_ms


@dataclass(frozen=True)
class CalibrationResult:
    """Thresholds plus the raw sweep data that produced them."""

    thresholds: LayoutThresholds
    n_sweep: tuple[SweepPoint, ...]
    c_sweep: tuple[SweepPoint, ...]
    profiling_ms: float

    def summary(self) -> str:
        lines = [
            f"calibrated thresholds: Ct={self.thresholds.ct} Nt={self.thresholds.nt}",
            f"simulated profiling cost: {self.profiling_ms:.1f} ms of GPU time",
        ]
        return "\n".join(lines)


def _time_both(context: SimulationContext, spec: ConvSpec) -> tuple[float, float]:
    chwn = context.run(make_conv_kernel(spec, "direct"), check_memory=False).time_ms
    nchw = context.run(make_conv_kernel(spec, "im2col"), check_memory=False).time_ms
    return chwn, nchw


def _time_both_chunk(
    context: SimulationContext, specs: list[ConvSpec]
) -> list[tuple[float, float]]:
    """Batched ``_time_both``: both layouts of every sweep point in one
    memoized vectorized evaluation (calibration points never fail, so any
    in-slot exception is a real error and re-raises)."""
    models = []
    for spec in specs:
        models.append(make_conv_kernel(spec, "direct"))
        models.append(make_conv_kernel(spec, "im2col"))
    outcomes = evaluate_cells(context, models, check_memory=False)
    times: list[tuple[float, float]] = []
    for i in range(len(specs)):
        chwn, nchw = outcomes[2 * i], outcomes[2 * i + 1]
        if isinstance(chwn, Exception):
            raise chwn
        if isinstance(nchw, Exception):
            raise nchw
        times.append((chwn.time_ms, nchw.time_ms))
    return times


def _sweep_times(
    ctx: SimulationContext, specs: list[ConvSpec], jobs: int | str | None
) -> list[tuple[float, float]]:
    if batched_eval_enabled():
        return map_chunks(_time_both_chunk, specs, ctx, jobs=jobs)
    return parallel_map(_time_both, specs, ctx, jobs=jobs)


def calibrate(
    device: DeviceSpec,
    reference: ConvSpec = REFERENCE_SHAPE,
    n_values: tuple[int, ...] = N_SWEEP,
    c_values: tuple[int, ...] = C_SWEEP,
    context: SimulationContext | None = None,
    jobs: int | str | None = None,
) -> CalibrationResult:
    """Recover (Ct, Nt) for a device from the Fig. 4 style sweeps.

    * **Nt** — smallest swept N (at the reference's large C) where the CHWN
      path wins; above it, batch-register reuse carries CHWN regardless of C.
    * **Ct** — smallest swept C where the NCHW path wins, measured at a
      batch *below* Nt so the N-rule does not mask the C crossover.

    The two sweeps are sequential (the C sweep's batch size depends on the
    N sweep's crossover) but the points *within* each sweep are independent
    and fan out over ``jobs`` workers.
    """
    ctx = context or default_context(device)
    profiling_ms = 0.0

    n_sorted = sorted(n_values)
    with obs_span(
        "calibrate:n-sweep", "calibrate", device=device.name, points=len(n_sorted)
    ):
        n_times = _sweep_times(
            ctx, [replace(reference, n=n) for n in n_sorted], jobs
        )
    n_points = [
        SweepPoint(n, chwn, nchw) for n, (chwn, nchw) in zip(n_sorted, n_times)
    ]
    profiling_ms += sum(chwn + nchw for chwn, nchw in n_times)
    nt = next((p.value for p in n_points if p.chwn_wins), max(n_values))

    c_batch = max((n for n in n_values if n < nt), default=min(n_values))
    c_sorted = sorted(c_values)
    with obs_span(
        "calibrate:c-sweep", "calibrate", device=device.name, points=len(c_sorted)
    ):
        c_times = _sweep_times(
            ctx, [replace(reference, ci=c, n=c_batch) for c in c_sorted], jobs
        )
    c_points = [
        SweepPoint(c, chwn, nchw) for c, (chwn, nchw) in zip(c_sorted, c_times)
    ]
    profiling_ms += sum(chwn + nchw for chwn, nchw in c_times)
    ct = next(
        (p.value for p in c_points if not p.chwn_wins), max(c_values) * 2
    )

    return CalibrationResult(
        thresholds=LayoutThresholds(ct=int(ct), nt=int(nt)),
        n_sweep=tuple(n_points),
        c_sweep=tuple(c_points),
        profiling_ms=profiling_ms,
    )
