"""Lowering into the graph IR: from NetworkDef and from legacy plan nodes.

Two entry points build a :class:`~repro.ir.graph.Graph`:

* :func:`lower_netdef` — from a :class:`~repro.framework.netdef.NetworkDef`,
  honoring explicit ``bottom=`` wiring (DAGs) and defaulting to the
  previous layer (chains);
* :func:`graph_from_plan_nodes` — from the legacy ``list[PlanNode]`` chain,
  so the compatibility wrappers in ``repro.core.planner`` can feed the
  pass pipeline.

:func:`infer_shapes` is the single shape-inference implementation; the
legacy ``framework.net.resolve`` is now a thin adapter over it.  Error
messages keep the legacy layer-prefixed wording ("conv3: convolution after
flattening") because user code and tests match on it.

This module imports only the IR and layer-spec leaves at module level —
``framework.netdef`` is imported lazily inside :func:`lower_netdef` — so
the pipeline and the framework can both depend on it without a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..layers.base import ConvSpec, FCSpec, PoolSpec, SoftmaxSpec
from ..layers.elementwise import LRNSpec
from .graph import Dims, Graph, GraphError, GraphNode, NodeKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.planner import PlanNode
    from ..framework.netdef import NetworkDef


def lower_netdef(net: "NetworkDef") -> Graph:
    """Lower a layer stack to an (unresolved) graph.

    Wiring: a layer with ``bottom=None`` consumes the previous layer's
    output (the first layer consumes the network input); ``bottom="name"``
    consumes that named layer; a concat layer names all its inputs.  Shapes
    are *not* inferred here — run :func:`infer_shapes` (or the
    ``ResolveShapes`` pass) on the result.
    """
    from ..framework.netdef import (
        ConcatDef,
        ConvDef,
        FCDef,
        LRNDef,
        PoolDef,
        SoftmaxDef,
    )

    kind_of = {
        ConvDef: NodeKind.CONV,
        PoolDef: NodeKind.POOL,
        LRNDef: NodeKind.ELEMENTWISE,
        FCDef: NodeKind.CLASSIFIER,
        SoftmaxDef: NodeKind.CLASSIFIER,
        ConcatDef: NodeKind.CONCAT,
    }
    graph = Graph(
        name=net.name,
        batch=net.batch,
        in_channels=net.in_channels,
        in_h=net.in_h,
        in_w=net.in_w,
    )
    prev: str | None = None
    for defn in net.layers:
        kind = kind_of.get(type(defn))
        if kind is None:  # pragma: no cover - closed union
            raise TypeError(f"unknown layer def {type(defn)!r}")
        if isinstance(defn, ConcatDef):
            inputs = defn.inputs
        else:
            bottom = getattr(defn, "bottom", None)
            if bottom is not None:
                inputs = (bottom,)
            elif prev is not None:
                inputs = (prev,)
            else:
                inputs = ()  # first layer: network input
        for src in inputs:
            if src not in graph:
                raise GraphError(
                    f"{defn.name}: bottom {src!r} does not name an earlier layer"
                )
        graph.add(GraphNode(name=defn.name, kind=kind, inputs=inputs, defn=defn))
        prev = defn.name
    graph.validate()
    return graph


def _producer_dims(
    graph: Graph, node: GraphNode
) -> tuple[Dims | None, int | None]:
    """(4-D dims, flattened features) arriving at ``node``'s single input."""
    if not node.inputs:
        return graph.in_dims, None
    producer = graph[node.inputs[0]]
    return producer.out_dims, producer.out_features


def infer_shapes(graph: Graph) -> Graph:
    """Resolve specs/dims for every node, in topological order.

    Raises ``ValueError`` with the offending layer's name on inconsistent
    geometry, matching the legacy ``resolve`` messages.
    """
    from ..framework.netdef import ConvDef, FCDef, LRNDef, PoolDef

    for node in graph.topological():
        defn = node.defn
        if node.kind is NodeKind.CONV:
            assert isinstance(defn, ConvDef)
            dims, _ = _producer_dims(graph, node)
            if dims is None:
                raise ValueError(f"{node.name}: convolution after flattening")
            n, c, h, w = dims
            try:
                spec = ConvSpec(
                    n=n, ci=c, h=h, w=w, co=defn.co,
                    fh=defn.f, fw=defn.f, stride=defn.stride, pad=defn.pad,
                    groups=defn.groups,
                )
            except ValueError as exc:
                raise ValueError(f"{node.name}: {exc}") from exc
            node.spec = spec
            node.in_dims = dims
            node.out_dims = (n, defn.co, spec.out_h, spec.out_w)
        elif node.kind is NodeKind.POOL:
            assert isinstance(defn, PoolDef)
            dims, _ = _producer_dims(graph, node)
            if dims is None:
                raise ValueError(f"{node.name}: pooling after flattening")
            n, c, h, w = dims
            try:
                spec = PoolSpec(
                    n=n, c=c, h=h, w=w,
                    window=defn.window, stride=defn.stride, op=defn.op,
                )
            except ValueError as exc:
                raise ValueError(f"{node.name}: {exc}") from exc
            node.spec = spec
            node.in_dims = dims
            node.out_dims = (n, c, spec.out_h, spec.out_w)
        elif node.kind is NodeKind.ELEMENTWISE:
            assert isinstance(defn, LRNDef)
            dims, _ = _producer_dims(graph, node)
            if dims is None:
                raise ValueError(f"{node.name}: LRN after flattening")
            node.spec = LRNSpec(depth=defn.depth)
            node.in_dims = dims
            node.out_dims = dims
        elif node.kind is NodeKind.CONCAT:
            shapes: list[Dims] = []
            for producer in graph.producers(node.name):
                if producer.out_dims is None:
                    raise ValueError(f"{node.name}: concat after flattening")
                shapes.append(producer.out_dims)
            base = shapes[0]
            for src, dims in zip(node.inputs, shapes):
                if (dims[0], dims[2], dims[3]) != (base[0], base[2], base[3]):
                    raise ValueError(
                        f"{node.name}: concat input {src!r} has spatial dims "
                        f"{dims[0]}x{dims[2]}x{dims[3]}, expected "
                        f"{base[0]}x{base[2]}x{base[3]}"
                    )
            channels = sum(dims[1] for dims in shapes)
            node.spec = None
            node.in_dims = (base[0], channels, base[2], base[3])
            node.out_dims = node.in_dims
        elif node.kind is NodeKind.CLASSIFIER:
            dims, features = _producer_dims(graph, node)
            if isinstance(defn, FCDef):
                if dims is not None:
                    n, c, h, w = dims
                    in_features = c * h * w
                    batch = n
                else:
                    if features is None:
                        raise ValueError(
                            f"{node.name}: FC needs a preceding layer output"
                        )
                    in_features = features
                    batch = graph.batch
                node.spec = FCSpec(
                    n=batch, in_features=in_features,
                    out_features=defn.out_features,
                )
                node.in_dims = dims
                node.out_dims = None
                node.out_features = defn.out_features
            else:  # softmax
                if features is None:
                    raise ValueError(
                        f"{node.name}: softmax needs a preceding FC layer"
                    )
                node.spec = SoftmaxSpec(n=graph.batch, categories=features)
                node.in_dims = None
                node.out_dims = None
                node.out_features = features
        else:  # pragma: no cover - enum is closed
            raise TypeError(f"unknown node kind {node.kind!r}")
    return graph


def graph_from_plan_nodes(
    nodes: Sequence["PlanNode"], name: str = "chain"
) -> Graph:
    """Wrap a legacy planner chain as a graph (already resolved).

    Each node keeps its spec/in_dims/fixed_ms verbatim; ``out_dims`` is
    back-filled from the successor's ``in_dims`` so edge-transform costs
    match the legacy per-node accounting exactly.
    """
    graph = Graph(name=name)
    if nodes:
        dims = nodes[0].in_dims
        if dims is not None:
            graph.batch, graph.in_channels, graph.in_h, graph.in_w = dims
    prev: str | None = None
    for i, pnode in enumerate(nodes):
        successor_in = nodes[i + 1].in_dims if i + 1 < len(nodes) else None
        graph.add(
            GraphNode(
                name=pnode.name,
                kind=NodeKind(pnode.kind.value),
                inputs=(prev,) if prev is not None else (),
                spec=pnode.spec,
                in_dims=pnode.in_dims,
                out_dims=successor_in,
                fixed_ms=pnode.fixed_ms,
            )
        )
        prev = pnode.name
    return graph


def iter_edges(graph: Graph) -> Iterable[tuple[GraphNode | None, GraphNode]]:
    """All (producer, consumer) pairs; producer is None for the input edge."""
    for node in graph.topological():
        if not node.inputs:
            yield None, node
        for src in node.inputs:
            yield graph[src], node
