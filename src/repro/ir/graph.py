"""The network-graph IR: typed nodes with explicit producer/consumer edges.

The paper's framework integration (Section IV.D) is a sequence of
whole-network transformations — layout assignment, transform insertion,
transform fine-tuning, kernel fusion.  Each of those is naturally a *pass*
over one explicit graph representation of the network, the way a compiler
runs passes over its IR.  This module is that IR:

* :class:`GraphNode` — one layer with explicit ``inputs`` edges, resolved
  shape/spec annotations, and the layout/implementation/transform
  annotations the passes attach;
* :class:`Graph` — an insertion-ordered node set with topological
  iteration, producer/consumer queries, chain detection, and a JSON
  round-trip for tooling;
* :class:`EdgeTransform` — a layout transformation inserted on one
  producer→consumer edge (a chain node has at most one; a concat node may
  carry one per mismatched input).

Unlike the legacy ``list[PlanNode]`` chain the planner consumed, the graph
represents branching (Inception/ResNet-style) networks: a node may feed
several consumers and a :attr:`NodeKind.CONCAT` node joins several
producers.  ``repro.core.pipeline`` runs the passes; the final lowering
back to :class:`~repro.core.planner.LayoutPlan` keeps every existing
consumer working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from ..tensors.layout import DataLayout

Dims = tuple[int, int, int, int]


class NodeKind(Enum):
    """What a graph node computes."""

    CONV = "conv"
    POOL = "pool"
    ELEMENTWISE = "elementwise"  # relu / lrn: layout-transparent
    CLASSIFIER = "classifier"  # fc / softmax: layout-irrelevant (flattened)
    CONCAT = "concat"  # channel-axis join of several producers

    @property
    def layout_bearing(self) -> bool:
        """Whether the node's own kernel cost depends on the storage layout."""
        return self in (NodeKind.CONV, NodeKind.POOL)

    @property
    def layout_agnostic(self) -> bool:
        """Whether the node streams bytes identically under any layout (and
        can therefore host or absorb a boundary transform for free)."""
        return self in (NodeKind.ELEMENTWISE, NodeKind.CONCAT)


@dataclass(frozen=True)
class EdgeTransform:
    """A layout transformation on one producer→consumer edge.

    ``src`` names the producer node ("" for the network input); the
    transform relayouts that producer's output from ``from_layout`` to
    ``to_layout`` before the owning node consumes it.
    """

    src: str
    from_layout: DataLayout
    to_layout: DataLayout
    ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "src": self.src,
            "from": str(self.from_layout),
            "to": str(self.to_layout),
            "ms": self.ms,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EdgeTransform":
        return cls(
            src=data["src"],
            from_layout=DataLayout(data["from"]),
            to_layout=DataLayout(data["to"]),
            ms=float(data["ms"]),
        )


@dataclass
class GraphNode:
    """One layer as the pass pipeline sees it.

    Construction needs only identity and wiring (``name``, ``kind``,
    ``inputs``, and optionally the source ``defn``); the passes fill in the
    rest — ``ResolveShapes`` the specs/dims/fixed costs, ``AssignLayouts``
    the layout, ``InsertTransforms`` the edge transforms, and
    ``SelectImplementations`` the implementation/time annotations.
    """

    name: str
    kind: NodeKind
    inputs: tuple[str, ...] = ()
    #: source layer definition, when lowered from a NetworkDef
    defn: object | None = None
    #: resolved kernel spec (ConvSpec | PoolSpec | SoftmaxSpec | ...)
    spec: object | None = None
    in_dims: Dims | None = None
    out_dims: Dims | None = None
    out_features: int | None = None
    #: per-layer time for kinds whose cost does not depend on layout
    fixed_ms: float = 0.0
    # -- pass annotations ---------------------------------------------------
    #: assigned storage layout (None until AssignLayouts; stays None for
    #: CLASSIFIER nodes, whose flattened data has no 4-D layout)
    layout: DataLayout | None = None
    implementation: str | None = None
    layer_ms: float = 0.0
    coarsening: tuple[int, int] | None = None
    #: layout transforms on this node's input edges
    transforms: tuple[EdgeTransform, ...] = ()
    #: fusion pattern that claimed this node, if any
    fused: str | None = None

    @property
    def transform_ms(self) -> float:
        return sum(t.ms for t in self.transforms)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (annotations included, specs by repr)."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "inputs": list(self.inputs),
            "in_dims": list(self.in_dims) if self.in_dims else None,
            "out_dims": list(self.out_dims) if self.out_dims else None,
            "out_features": self.out_features,
            "fixed_ms": self.fixed_ms,
            "layout": str(self.layout) if self.layout else None,
            "implementation": self.implementation,
            "layer_ms": self.layer_ms,
            "coarsening": list(self.coarsening) if self.coarsening else None,
            "transforms": [t.to_dict() for t in self.transforms],
            "fused": self.fused,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GraphNode":
        return cls(
            name=data["name"],
            kind=NodeKind(data["kind"]),
            inputs=tuple(data.get("inputs", ())),
            in_dims=tuple(data["in_dims"]) if data.get("in_dims") else None,
            out_dims=tuple(data["out_dims"]) if data.get("out_dims") else None,
            out_features=data.get("out_features"),
            fixed_ms=float(data.get("fixed_ms", 0.0)),
            layout=DataLayout(data["layout"]) if data.get("layout") else None,
            implementation=data.get("implementation"),
            layer_ms=float(data.get("layer_ms", 0.0)),
            coarsening=tuple(data["coarsening"]) if data.get("coarsening") else None,
            transforms=tuple(
                EdgeTransform.from_dict(t) for t in data.get("transforms", ())
            ),
            fused=data.get("fused"),
        )


class GraphError(ValueError):
    """The graph is structurally invalid (bad edge, cycle, duplicate)."""


@dataclass
class Graph:
    """A network as a DAG of :class:`GraphNode`, plus the input geometry."""

    name: str
    batch: int = 0
    in_channels: int = 0
    in_h: int = 0
    in_w: int = 0
    nodes: dict[str, GraphNode] = field(default_factory=dict)

    @property
    def in_dims(self) -> Dims:
        return (self.batch, self.in_channels, self.in_h, self.in_w)

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in self.nodes

    def __getitem__(self, name: str) -> GraphNode:
        return self.nodes[name]

    def add(self, node: GraphNode) -> GraphNode:
        """Append a node; its inputs must reference already-added nodes."""
        if node.name in self.nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        for src in node.inputs:
            if src not in self.nodes:
                raise GraphError(
                    f"{node.name}: input {src!r} is not a node added before it"
                )
        self.nodes[node.name] = node
        return node

    def producers(self, name: str) -> tuple[GraphNode, ...]:
        return tuple(self.nodes[src] for src in self.nodes[name].inputs)

    def consumers(self, name: str) -> tuple[GraphNode, ...]:
        return tuple(n for n in self.nodes.values() if name in n.inputs)

    def topological(self) -> tuple[GraphNode, ...]:
        """Nodes in dependency order (insertion order is one by
        construction, since ``add`` rejects forward references)."""
        return tuple(self.nodes.values())

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self.topological())

    def is_chain(self) -> bool:
        """True when every node feeds exactly the next one — the shape the
        legacy list[PlanNode] planner could represent."""
        order = self.topological()
        for i, node in enumerate(order):
            expected = (order[i - 1].name,) if i else ()
            if node.inputs != expected and not (i == 0 and not node.inputs):
                return False
        return True

    def validate(self) -> None:
        """Check structural invariants beyond what ``add`` enforces."""
        for node in self.nodes.values():
            if node.kind is NodeKind.CONCAT and len(node.inputs) < 2:
                raise GraphError(
                    f"{node.name}: concat needs at least two inputs, "
                    f"got {len(node.inputs)}"
                )
            seen: set[str] = set()
            for src in node.inputs:
                if src in seen:
                    raise GraphError(f"{node.name}: duplicate input {src!r}")
                seen.add(src)

    # -- serialization ------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "input": {
                "batch": self.batch,
                "channels": self.in_channels,
                "h": self.in_h,
                "w": self.in_w,
            },
            "nodes": [n.to_dict() for n in self.topological()],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "Graph":
        inp = data.get("input", {})
        graph = cls(
            name=data["name"],
            batch=int(inp.get("batch", 0)),
            in_channels=int(inp.get("channels", 0)),
            in_h=int(inp.get("h", 0)),
            in_w=int(inp.get("w", 0)),
        )
        for node_data in data.get("nodes", ()):
            graph.add(GraphNode.from_dict(node_data))
        return graph

    def summary(self) -> str:
        lines = [f"graph {self.name}: {len(self.nodes)} nodes"]
        for node in self.topological():
            layout = str(node.layout) if node.layout else "-"
            wires = ",".join(node.inputs) or "(input)"
            lines.append(
                f"  {node.name:14s} {node.kind.value:12s} {layout:5s} <- {wires}"
            )
        return "\n".join(lines)
