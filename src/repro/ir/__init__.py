"""repro.ir — the typed network-graph IR the pass pipeline runs over.

``repro.ir.graph`` defines the data model (:class:`Graph`,
:class:`GraphNode`, :class:`EdgeTransform`, :class:`NodeKind`);
``repro.ir.build`` lowers :class:`~repro.framework.netdef.NetworkDef` (or a
legacy planner chain) into it.  See docs/ARCHITECTURE.md.
"""

from .graph import (
    Dims,
    EdgeTransform,
    Graph,
    GraphError,
    GraphNode,
    NodeKind,
)
from .build import (
    graph_from_plan_nodes,
    infer_shapes,
    iter_edges,
    lower_netdef,
)

__all__ = [
    "Dims",
    "EdgeTransform",
    "Graph",
    "GraphError",
    "GraphNode",
    "NodeKind",
    "graph_from_plan_nodes",
    "infer_shapes",
    "iter_edges",
    "lower_netdef",
]
