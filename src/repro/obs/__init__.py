"""Unified observability: span tracing, metrics, and trace exporters.

``repro.obs`` is the measurement substrate the rest of the reproduction
reports into — the paper's per-layer attribution method turned into a
first-class subsystem:

* :mod:`repro.obs.tracer` — nested, thread/process-safe spans and instant
  events, with a process-wide active tracer (:func:`install_tracer`) and a
  no-op fast path when tracing is off;
* :mod:`repro.obs.metrics` — counters, gauges and percentile histograms in
  picklable registries, aggregated process-wide by
  :func:`aggregate_metrics`;
* :mod:`repro.obs.export` — Chrome-trace JSON (``chrome://tracing`` /
  Perfetto), JSONL event logs, flat metrics JSON, plus the schema checker
  behind ``python -m repro.obs.check``.

The package is dependency-free and imports nothing from the rest of
``repro``, so every layer (simulator, pipeline, sweeps, CLI) can report
into it without cycles.  See ``docs/OBSERVABILITY.md`` for the tour.
"""

from .export import (
    chrome_trace,
    summarize_spans,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_metrics,
    global_registry,
    register_metrics_provider,
    reset_global_registry,
)
from .tracer import (
    Span,
    TraceEvent,
    Tracer,
    active_tracer,
    install_tracer,
    span,
    tracing_enabled,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "aggregate_metrics",
    "chrome_trace",
    "global_registry",
    "install_tracer",
    "register_metrics_provider",
    "reset_global_registry",
    "span",
    "summarize_spans",
    "tracing_enabled",
    "uninstall_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]
