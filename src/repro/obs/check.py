"""Chrome-trace schema checker: ``python -m repro.obs.check TRACE.json``.

Exit status 0 when the file is a valid Chrome-trace payload (see
:func:`repro.obs.export.validate_chrome_trace`), 1 when problems are
found, 2 on unreadable input.  Prints a one-line digest on success so CI
logs show what the trace contained.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from .export import validate_chrome_trace


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.check",
        description="Validate a Chrome-trace JSON file emitted by repro.obs.",
    )
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument(
        "--require-category",
        action="append",
        default=[],
        metavar="CAT",
        help="fail unless at least one event has this category (repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trace, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check: cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2

    problems = validate_chrome_trace(payload)
    events = payload.get("traceEvents", []) if isinstance(payload, dict) else []
    categories = {
        ev.get("cat") for ev in events if isinstance(ev, dict) and ev.get("cat")
    }
    for wanted in args.require_category:
        if wanted not in categories:
            problems.append(
                f"no event with category {wanted!r} "
                f"(present: {sorted(categories)})"
            )
    if problems:
        for p in problems:
            print(f"check: {p}", file=sys.stderr)
        return 1
    complete = sum(1 for ev in events if ev.get("ph") == "X")
    print(
        f"{args.trace}: valid Chrome trace — {len(events)} events "
        f"({complete} spans), categories: {', '.join(sorted(categories))}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
