"""Process-wide metrics: counters, gauges, and percentile histograms.

Where :mod:`repro.obs.tracer` answers *when and where* time went, this
module answers *how much of what happened*: kernel-cache hit counts, cache
replay calls, DRAM bound-mechanism tallies, per-kernel timing distributions.

A :class:`MetricsRegistry` is a picklable bag of named metrics, so worker
processes can ship theirs back across a process boundary for
:meth:`MetricsRegistry.merge` — the same merge-on-join discipline as the
simulator's structural cache.  The registry that backs a
:class:`~repro.gpusim.session.SimStats` travels inside it through
``export_state``/``absorb`` unchanged.

:func:`aggregate_metrics` assembles the full process picture: the global
registry plus every registry announced by a provider (the simulation
session module registers one for the per-device default contexts), merged
into a fresh snapshot registry.  ``repro ... --metrics FILE`` serializes
that snapshot.
"""

from __future__ import annotations

import threading
from math import ceil
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "aggregate_metrics",
    "global_registry",
    "register_metrics_provider",
    "reset_global_registry",
]


class Counter:
    """A monotonically growing (but resettable) count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def summary(self) -> float:
        return self.value


class Gauge:
    """A last-write-wins level (e.g. cache size at end of run)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def summary(self) -> float:
        return self.value


class Histogram:
    """A value distribution with nearest-rank percentile summaries.

    Raw observations are retained (our workloads observe thousands, not
    millions, of values), which keeps merging exact: folding two
    histograms concatenates their observations.
    """

    kind = "histogram"
    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100]."""
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self.values)
        rank = ceil(p * len(ordered) / 100.0)  # nearest-rank definition
        return ordered[min(len(ordered), max(1, rank)) - 1]

    def summary(self) -> dict[str, float]:
        if not self.values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": min(self.values),
            "max": max(self.values),
            "mean": self.total / self.count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """A named collection of metrics, thread-safe and picklable.

    Names are namespaced with dots (``sim.queries.hits``); a name is bound
    to one metric kind for the registry's lifetime — asking for the same
    name as a different kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # -- pickling (locks don't cross process boundaries) --------------------
    def __getstate__(self) -> dict[str, Any]:
        return {"metrics": self._metrics}

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._metrics = state["metrics"]

    # -- access -------------------------------------------------------------
    def _get(self, name: str, factory: type) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name)
                self._metrics[name] = metric
            elif not isinstance(metric, factory):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {factory.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def value(self, name: str, default: float = 0.0) -> float:
        """A counter/gauge's current value (0 when never touched)."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use summary()")
        return metric.value

    def names(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(n for n in self._metrics if n.startswith(prefix))

    # -- aggregation --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Flat name → value (counters/gauges) or summary dict (histograms)."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name].summary() for name in sorted(metrics)}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges last-write-wins,
        histograms concatenate observations."""
        with other._lock:
            theirs = dict(other._metrics)
        for name, metric in theirs.items():
            if isinstance(metric, Counter):
                self.counter(name).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(name).set(metric.value)
            else:
                self.histogram(name).values.extend(metric.values)

    def reset(self, prefix: str = "") -> None:
        """Drop metrics whose name starts with ``prefix`` (all by default)."""
        with self._lock:
            for name in [n for n in self._metrics if n.startswith(prefix)]:
                del self._metrics[name]


# ---------------------------------------------------------------------------
# The process-wide registry and the provider fan-in
# ---------------------------------------------------------------------------

_GLOBAL = MetricsRegistry()

#: Named callbacks yielding extra registries to fold into the aggregate
#: (e.g. the per-device simulation sessions).  Keyed so repeat
#: registrations from module re-imports stay idempotent.
_PROVIDERS: dict[str, Callable[[], Iterable[MetricsRegistry]]] = {}


def global_registry() -> MetricsRegistry:
    """The process-wide registry for code without a closer home."""
    return _GLOBAL


def reset_global_registry() -> None:
    """Zero the process-wide registry (test isolation, worker reuse)."""
    _GLOBAL.reset()


def register_metrics_provider(
    name: str, provider: Callable[[], Iterable[MetricsRegistry]]
) -> None:
    """Announce extra registries for :func:`aggregate_metrics` to fold in."""
    _PROVIDERS[name] = provider


def aggregate_metrics() -> MetricsRegistry:
    """A fresh registry holding the merged process-wide picture."""
    total = MetricsRegistry()
    total.merge(_GLOBAL)
    for provider in _PROVIDERS.values():
        for registry in provider():
            total.merge(registry)
    return total
