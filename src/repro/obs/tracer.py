"""Span-based tracing: the measurement substrate for the whole reproduction.

The paper's method is *attribution* — DRAM transactions, L2 hit rates and
transform overheads pinned to individual layers and planner decisions.  This
module gives every subsystem one shared way to record where time went:

* :class:`Span` — one timed region (name, category, wall-clock interval,
  process/thread ids, free-form attributes, parent link for nesting);
* :class:`TraceEvent` — an instant marker (planner decisions, cache merges);
* :class:`Tracer` — the per-process collector.  ``tracer.span(...)`` is a
  context manager; spans opened inside it become children via a
  thread-local stack, so concurrent threads never cross-link parents.

Tracing is strictly *observational*: every instrumented code path computes
exactly the same results whether a tracer is installed or not (the byte
identity is asserted by ``tests/obs/test_determinism.py``).  When no tracer
is installed the module-level :func:`span` helper costs one global read.

Timestamps are wall-clock microseconds anchored once per tracer
(``time.time`` origin advanced by ``time.perf_counter`` deltas), so spans
recorded by worker processes line up with the parent's on a common axis
when their streams are folded back with :meth:`Tracer.absorb` — the tracing
analog of the simulator's ``export_state``/``absorb`` cache merge.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

__all__ = [
    "Span",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "install_tracer",
    "span",
    "tracing_enabled",
    "uninstall_tracer",
]


@dataclass
class Span:
    """One completed timed region.

    ``span_id`` is unique within the recording process; the pair
    ``(pid, span_id)`` is unique across a whole merged trace.  ``attrs``
    must hold JSON-safe values (they become Chrome-trace ``args``).
    """

    name: str
    category: str
    start_us: float
    duration_us: float
    pid: int
    tid: int
    span_id: int
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    @property
    def duration_ms(self) -> float:
        return self.duration_us / 1e3


@dataclass
class TraceEvent:
    """An instant (zero-duration) marker on the trace timeline."""

    name: str
    category: str
    timestamp_us: float
    pid: int
    tid: int
    attrs: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects spans and instant events for one process.

    Thread-safe: span ids and the completed-span list are guarded by a
    lock, while the open-span stack that provides parent links is
    thread-local.  Spans are appended on *completion*, so the recorded
    order is completion order; exporters re-sort by start time.
    """

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._events: list[TraceEvent] = []
        self._next_id = 1
        self._local = threading.local()
        self._t0_wall = time.time()
        self._t0_perf = time.perf_counter()

    # -- clock --------------------------------------------------------------
    def now_us(self) -> float:
        """Wall-clock microseconds, monotonic within this tracer."""
        return (self._t0_wall + (time.perf_counter() - self._t0_perf)) * 1e6

    # -- recording ----------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    @contextmanager
    def span(
        self, name: str, category: str = "repro", **attrs: Any
    ) -> Iterator[Span]:
        """Record one timed region; yields the live :class:`Span` so the
        body can attach attributes discovered mid-flight."""
        stack = self._stack()
        sp = Span(
            name=name,
            category=category,
            start_us=self.now_us(),
            duration_us=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=self._allocate_id(),
            parent_id=stack[-1] if stack else None,
            attrs=dict(attrs),
        )
        stack.append(sp.span_id)
        try:
            yield sp
        finally:
            stack.pop()
            sp.duration_us = self.now_us() - sp.start_us
            with self._lock:
                self._spans.append(sp)

    def record(
        self, name: str, category: str, duration_us: float, **attrs: Any
    ) -> Span:
        """Append an already-measured region ending now (for hot paths that
        time themselves and only report when a tracer is active)."""
        end = self.now_us()
        stack = self._stack()
        sp = Span(
            name=name,
            category=category,
            start_us=end - duration_us,
            duration_us=duration_us,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=self._allocate_id(),
            parent_id=stack[-1] if stack else None,
            attrs=dict(attrs),
        )
        with self._lock:
            self._spans.append(sp)
        return sp

    def event(self, name: str, category: str = "repro", **attrs: Any) -> TraceEvent:
        """Record an instant marker at the current time."""
        ev = TraceEvent(
            name=name,
            category=category,
            timestamp_us=self.now_us(),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=dict(attrs),
        )
        with self._lock:
            self._events.append(ev)
        return ev

    # -- access + merging ---------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        with self._lock:
            return tuple(self._spans)

    def events(self) -> tuple[TraceEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def absorb(
        self, spans: Sequence[Span], events: Sequence[TraceEvent] = ()
    ) -> int:
        """Fold a worker process's span/event streams into this tracer.

        Worker spans keep their own pid/tid/span ids — ids are only unique
        per process, and exporters key rows on ``(pid, tid)`` — so the
        merge is a plain extend.  Returns the number of spans absorbed.
        """
        with self._lock:
            self._spans.extend(spans)
            self._events.extend(events)
        return len(spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._events.clear()


# ---------------------------------------------------------------------------
# The process-wide active tracer
# ---------------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def install_tracer(tracer: Tracer | None = None) -> Tracer:
    """Make ``tracer`` (or a fresh one) the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def uninstall_tracer() -> Tracer | None:
    """Remove and return the active tracer (tracing becomes a no-op)."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


def active_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is off."""
    return _ACTIVE


def tracing_enabled() -> bool:
    return _ACTIVE is not None


class _NullSpan:
    """Context manager yielded by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, category: str = "repro", **attrs: Any) -> Any:
    """Record a span on the active tracer, or do nothing when tracing is
    off.  Yields the live :class:`Span` (or ``None`` when disabled), so
    callers attaching attributes must guard: ``if sp is not None: ...``."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **attrs)
