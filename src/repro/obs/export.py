"""Trace and metrics exporters.

Three output formats, all plain JSON with zero dependencies:

* **Chrome trace** (:func:`chrome_trace` / :func:`write_chrome_trace`) —
  the ``chrome://tracing`` / Perfetto "JSON Array Format": one ``"X"``
  (complete) event per span, ``"i"`` (instant) events for markers, and
  ``"M"`` metadata rows naming each process.  Load the file in
  https://ui.perfetto.dev or ``chrome://tracing`` to get the flame view.
* **JSONL** (:func:`write_jsonl`) — one self-describing JSON object per
  line (``{"type": "span", ...}`` / ``{"type": "event", ...}``), the
  grep-and-jq-friendly event log.
* **Metrics JSON** (:func:`write_metrics`) — the flat
  name → value/summary snapshot of a
  :class:`~repro.obs.metrics.MetricsRegistry`, consumed by benchmarks.

:func:`validate_chrome_trace` is the small schema checker used by tests
and the CI smoke job (via ``python -m repro.obs.check``): it verifies the
invariants Perfetto actually relies on, not the full trace-event spec.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from .metrics import MetricsRegistry, aggregate_metrics
from .tracer import Span, TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "summarize_spans",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]

_TRACE_VERSION = 1


def _json_safe(value: Any) -> Any:
    """Coerce attribute values to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def chrome_trace(
    spans: Sequence[Span],
    events: Sequence[TraceEvent] = (),
    process_names: dict[int, str] | None = None,
) -> dict[str, Any]:
    """Build the ``chrome://tracing`` JSON payload for a span stream.

    Events are emitted in (start time, span id) order so the payload is
    deterministic for a deterministic workload.  ``process_names`` maps
    pid → display name; unnamed worker pids get ``worker-<pid>``.
    """
    trace_events: list[dict[str, Any]] = []
    pids = sorted({s.pid for s in spans} | {e.pid for e in events})
    names = process_names or {}
    for index, pid in enumerate(pids):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": names.get(pid, f"worker-{pid}")},
            }
        )
        trace_events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": index},
            }
        )
    for s in sorted(spans, key=lambda s: (s.start_us, s.pid, s.span_id)):
        trace_events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": round(s.start_us, 3),
                "dur": round(s.duration_us, 3),
                "pid": s.pid,
                "tid": s.tid,
                "args": _json_safe(
                    {**s.attrs, "span_id": s.span_id, "parent_id": s.parent_id}
                ),
            }
        )
    for e in sorted(events, key=lambda e: (e.timestamp_us, e.pid)):
        trace_events.append(
            {
                "name": e.name,
                "cat": e.category,
                "ph": "i",
                "ts": round(e.timestamp_us, 3),
                "pid": e.pid,
                "tid": e.tid,
                "s": "t",  # thread-scoped instant
                "args": _json_safe(e.attrs),
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "version": _TRACE_VERSION},
    }


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer,
    process_names: dict[int, str] | None = None,
) -> Path:
    """Serialize a tracer's streams as a Chrome-trace JSON file."""
    import os

    names = {os.getpid(): tracer.process_name}
    if process_names:
        names.update(process_names)
    payload = chrome_trace(tracer.spans(), tracer.events(), names)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1))
    return target


def write_jsonl(path: str | Path, tracer: Tracer) -> Path:
    """Serialize a tracer's streams as one JSON object per line."""
    records: list[dict[str, Any]] = []
    for s in sorted(tracer.spans(), key=lambda s: (s.start_us, s.pid, s.span_id)):
        records.append(
            {
                "type": "span",
                "name": s.name,
                "category": s.category,
                "start_us": s.start_us,
                "duration_us": s.duration_us,
                "pid": s.pid,
                "tid": s.tid,
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "attrs": _json_safe(s.attrs),
            }
        )
    for e in sorted(tracer.events(), key=lambda e: (e.timestamp_us, e.pid)):
        records.append(
            {
                "type": "event",
                "name": e.name,
                "category": e.category,
                "timestamp_us": e.timestamp_us,
                "pid": e.pid,
                "tid": e.tid,
                "attrs": _json_safe(e.attrs),
            }
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("".join(json.dumps(r) + "\n" for r in records))
    return target


def write_metrics(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Serialize a registry snapshot (the full process aggregate by
    default) as flat metrics JSON."""
    snap = (registry or aggregate_metrics()).snapshot()
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps({"version": 1, "metrics": snap}, indent=1, sort_keys=True))
    return target


# ---------------------------------------------------------------------------
# Validation (tests + CI smoke job)
# ---------------------------------------------------------------------------

_PHASES = {"X", "M", "i"}


def validate_chrome_trace(payload: Any) -> list[str]:
    """Check a Chrome-trace payload; returns a list of problems (empty =
    valid).  Covers the invariants Perfetto's JSON importer relies on:
    the ``traceEvents`` array, per-event name/ph/pid/tid, non-negative
    ``ts``/``dur`` on complete events, and JSON-serializable ``args``."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload lacks a 'traceEvents' array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing or empty 'name'")
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: 'ph' must be one of {sorted(_PHASES)}, got {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: '{key}' must be an integer")
        if ph in ("X", "i"):
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'dur' must be a non-negative number")
        if ph == "i" and not isinstance(ev.get("cat"), str):
            problems.append(f"{where}: instant events need a 'cat' string")
        args = ev.get("args")
        if args is not None:
            if not isinstance(args, dict):
                problems.append(f"{where}: 'args' must be an object")
            else:
                try:
                    json.dumps(args)
                except (TypeError, ValueError) as exc:
                    problems.append(f"{where}: 'args' not JSON-serializable ({exc})")
    return problems


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def summarize_spans(spans: Sequence[Span], top: int = 10) -> str:
    """A printable two-part digest: per-category totals, then the longest
    individual spans (the ``repro profile`` summary table)."""
    if not spans:
        return "no spans recorded"
    by_category: dict[str, tuple[int, float]] = {}
    for s in spans:
        count, total = by_category.get(s.category, (0, 0.0))
        by_category[s.category] = (count + 1, total + s.duration_ms)
    lines = ["span summary by category:"]
    lines.append(f"  {'category':20s} {'count':>7s} {'total ms':>10s}")
    for cat in sorted(by_category, key=lambda c: -by_category[c][1]):
        count, total = by_category[cat]
        lines.append(f"  {cat:20s} {count:7d} {total:10.3f}")
    lines.append(f"top {top} spans by duration:")
    lines.append(f"  {'span':36s} {'category':18s} {'ms':>9s}")
    ranked = sorted(spans, key=lambda s: -s.duration_us)[:top]
    for s in ranked:
        lines.append(f"  {s.name:36s} {s.category:18s} {s.duration_ms:9.3f}")
    return "\n".join(lines)
