"""4-D data layouts for CNN tensors.

The paper's first observation is that the 4-D feature-map arrays
``(N images, C channels, H height, W width)`` admit 24 storage orders and
that the choice has large performance consequences.  A :class:`DataLayout`
is a permutation of the logical axes ``N, C, H, W``; the *last* letter is
the fastest-varying (unit-stride) dimension, matching the paper's notation
("in the NCHW data layout, the elements along the lowest dimension W are
stored consecutively in memory").
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

LOGICAL_AXES = "NCHW"


@dataclass(frozen=True, order=True)
class DataLayout:
    """An axis ordering for a 4-D CNN tensor.

    ``order`` lists axes from slowest- to fastest-varying, e.g. ``"NCHW"``
    (Caffe/cuDNN) or ``"CHWN"`` (cuda-convnet).
    """

    order: str

    def __post_init__(self) -> None:
        if sorted(self.order) != sorted(LOGICAL_AXES):
            raise ValueError(
                f"layout must be a permutation of {LOGICAL_AXES!r}, got {self.order!r}"
            )

    def __str__(self) -> str:
        return self.order

    @property
    def lowest(self) -> str:
        """The unit-stride (memory-consecutive) axis."""
        return self.order[-1]

    def axis_position(self, axis: str) -> int:
        """Position of a logical axis in this layout (0 = slowest)."""
        if axis not in LOGICAL_AXES:
            raise ValueError(f"unknown axis {axis!r}")
        return self.order.index(axis)

    def permutation_from(self, other: "DataLayout") -> tuple[int, int, int, int]:
        """Axes permutation mapping an ``other``-ordered array onto this layout.

        Suitable for :func:`numpy.transpose`: ``arr_self = arr_other.transpose(p)``.
        """
        return tuple(other.order.index(axis) for axis in self.order)  # type: ignore[return-value]

    def shape_of(self, n: int, c: int, h: int, w: int) -> tuple[int, int, int, int]:
        """Physical array shape for logical dims (N, C, H, W)."""
        dims = {"N": n, "C": c, "H": h, "W": w}
        return tuple(dims[a] for a in self.order)  # type: ignore[return-value]

    def strides_of(
        self, n: int, c: int, h: int, w: int, itemsize: int = 4
    ) -> dict[str, int]:
        """Byte stride of each *logical* axis under this layout.

        This is the quantity the paper reasons with: e.g. under NCHW,
        consecutive elements along C are ``H*W`` apart.
        """
        shape = self.shape_of(n, c, h, w)
        strides: dict[str, int] = {}
        running = itemsize
        for axis, extent in zip(reversed(self.order), reversed(shape)):
            strides[axis] = running
            running *= extent
        return strides

    def linear_index(
        self, n: int, c: int, h: int, w: int, dims: tuple[int, int, int, int]
    ) -> int:
        """Flat element index of logical coordinate (n, c, h, w).

        ``dims`` is the logical extents (N, C, H, W).  Used by the traced
        kernel models to generate byte addresses.
        """
        coord = {"N": n, "C": c, "H": h, "W": w}
        extent = dict(zip(LOGICAL_AXES, dims))
        idx = 0
        for axis in self.order:
            idx = idx * extent[axis] + coord[axis]
        return idx


#: Caffe / cuDNN layout: images outermost, width unit-stride.
NCHW = DataLayout("NCHW")
#: cuda-convnet layout: batch unit-stride (coalesced over images).
CHWN = DataLayout("CHWN")
#: cuDNN's alternative channels-last layout.
NHWC = DataLayout("NHWC")
#: Equivalent-performance sibling of CHWN noted in Section IV.A.
HWCN = DataLayout("HWCN")

#: All 24 possible axis orders.
ALL_LAYOUTS: tuple[DataLayout, ...] = tuple(
    DataLayout("".join(p)) for p in permutations(LOGICAL_AXES)
)


def parse_layout(name: str) -> DataLayout:
    """Parse a layout name like ``"nchw"`` into a :class:`DataLayout`."""
    return DataLayout(name.strip().upper())
