"""Numeric layout transformations and their structural analysis.

Two things live here:

* :func:`transform` — the numerically exact relayout (the ground truth the
  kernel models are validated against);
* the structural helpers the fast GPU kernels rely on:
  :func:`transpose_groups` detects when a 4-D permutation collapses to a
  (batched) 2-D transpose — the paper's "matrix flatten 4D to 2D"
  observation that C, H, W keep their relative order between NCHW and CHWN —
  and :func:`relayout_linear_indices` maps flat source indices to flat
  destination indices for the traced kernel models.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod

import numpy as np

from .layout import DataLayout
from .tensor import Tensor4D, TensorDesc


def transform(tensor: Tensor4D, target: DataLayout) -> Tensor4D:
    """Relayout a tensor (exact, NumPy-backed)."""
    return tensor.to_layout(target)


@dataclass(frozen=True)
class TransposeGroups:
    """A permutation expressed as a batched 2-D transpose.

    The source order factors as ``batch + rows + cols`` (contiguous chunks)
    and the destination as ``batch + cols + rows``.  ``rows``/``cols`` are
    the merged extents of those chunks; the tiled kernels transpose a
    ``rows x cols`` matrix per batch entry.
    """

    batch: int
    rows: int
    cols: int


def transpose_groups(
    src: DataLayout, dst: DataLayout, dims: tuple[int, int, int, int]
) -> TransposeGroups | None:
    """Detect whether ``src -> dst`` is a batched 2-D transpose.

    Returns the merged group extents, or None when the permutation needs a
    genuine 4-D shuffle.  ``dims`` is the logical (N, C, H, W) extents.
    """
    extent = dict(zip("NCHW", dims))
    s, d = src.order, dst.order
    if s == d:
        return None
    # Try every split of the source into batch | rows | cols with non-empty
    # rows and cols such that dst == batch + cols + rows.
    for b in range(0, 3):
        for r in range(1, 4 - b):
            batch, rows, cols = s[:b], s[b : b + r], s[b + r :]
            if not cols:
                continue
            if d == batch + cols + rows:
                return TransposeGroups(
                    batch=prod(extent[a] for a in batch) if batch else 1,
                    rows=prod(extent[a] for a in rows),
                    cols=prod(extent[a] for a in cols),
                )
    return None


def relayout_linear_indices(
    desc: TensorDesc, target: DataLayout, linear_ids: np.ndarray
) -> np.ndarray:
    """Map flat indices in ``desc.layout`` order to flat indices in ``target``.

    Vectorized; used by the traced transformation kernels to compute the
    write addresses of threads that read the source in storage order.
    """
    ids = np.asarray(linear_ids, dtype=np.int64)
    src_shape = desc.physical_shape
    coords = np.unravel_index(ids.ravel(), src_shape)
    by_axis = dict(zip(desc.layout.order, coords))
    extent = dict(zip("NCHW", desc.dims))
    out = np.zeros(ids.size, dtype=np.int64)
    for axis in target.order:
        out = out * extent[axis] + by_axis[axis]
    return out.reshape(ids.shape)


@dataclass(frozen=True)
class TransformCost:
    """Static cost metadata for one relayout."""

    bytes_moved: int
    workspace_bytes: int

    @property
    def useful_bytes(self) -> int:
        return self.bytes_moved


def transform_cost(desc: TensorDesc, target: DataLayout) -> TransformCost:
    """Bytes moved (read + write) and scratch space for a relayout.

    The workspace is the destination buffer — the paper's "additional memory
    space overhead is only 73.5 MB ... freed right after the layout
    transformation is completed" for AlexNet.
    """
    if target == desc.layout:
        return TransformCost(bytes_moved=0, workspace_bytes=0)
    return TransformCost(bytes_moved=2 * desc.nbytes, workspace_bytes=desc.nbytes)
