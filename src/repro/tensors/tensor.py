"""Layout-aware 4-D tensors backed by NumPy.

:class:`TensorDesc` is the shape/layout metadata the planner and kernel
models work with; :class:`Tensor4D` adds actual data for the numeric layer
implementations.  Data is always stored *physically* in the tensor's layout
order (C-contiguous in that order), so converting between layouts really
moves memory — the numeric twin of the paper's transformation kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layout import CHWN, NCHW, DataLayout

_FLOAT = np.float32


@dataclass(frozen=True)
class TensorDesc:
    """Logical shape (N, C, H, W) plus storage layout."""

    n: int
    c: int
    h: int
    w: int
    layout: DataLayout = NCHW
    itemsize: int = 4

    def __post_init__(self) -> None:
        if min(self.n, self.c, self.h, self.w) <= 0:
            raise ValueError(f"tensor dims must be positive, got {self.dims}")

    @property
    def dims(self) -> tuple[int, int, int, int]:
        """Logical extents in canonical (N, C, H, W) order."""
        return (self.n, self.c, self.h, self.w)

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.n * self.c * self.h * self.w

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    @property
    def physical_shape(self) -> tuple[int, int, int, int]:
        return self.layout.shape_of(*self.dims)

    def stride_bytes(self, axis: str) -> int:
        """Byte stride along a logical axis."""
        return self.layout.strides_of(*self.dims, itemsize=self.itemsize)[axis]

    def with_layout(self, layout: DataLayout) -> "TensorDesc":
        return TensorDesc(self.n, self.c, self.h, self.w, layout, self.itemsize)

    def address_of(self, n: int, c: int, h: int, w: int, base: int = 0) -> int:
        """Byte address of a logical element (for the traced kernel models)."""
        return base + self.itemsize * self.layout.linear_index(n, c, h, w, self.dims)


class Tensor4D:
    """A 4-D float32 tensor stored physically in a chosen layout.

    The canonical *logical* view is always (N, C, H, W); ``to_layout``
    produces a new tensor whose backing array is contiguous in the target
    layout, mirroring what the paper's transformation kernels do on the GPU.
    """

    def __init__(self, data: np.ndarray, desc: TensorDesc) -> None:
        data = np.ascontiguousarray(data, dtype=_FLOAT)
        if data.shape != desc.physical_shape:
            raise ValueError(
                f"data shape {data.shape} does not match layout "
                f"{desc.layout} physical shape {desc.physical_shape}"
            )
        self.data = data
        self.desc = desc

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_nchw(cls, array: np.ndarray, layout: DataLayout = NCHW) -> "Tensor4D":
        """Build from a logical (N, C, H, W) array, storing it in ``layout``."""
        array = np.asarray(array, dtype=_FLOAT)
        if array.ndim != 4:
            raise ValueError(f"expected a 4-D array, got ndim={array.ndim}")
        n, c, h, w = array.shape
        desc = TensorDesc(n, c, h, w, layout)
        physical = array.transpose(layout.permutation_from(NCHW))
        return cls(np.ascontiguousarray(physical), desc)

    @classmethod
    def zeros(cls, desc: TensorDesc) -> "Tensor4D":
        return cls(np.zeros(desc.physical_shape, dtype=_FLOAT), desc)

    @classmethod
    def random(cls, desc: TensorDesc, seed: int = 0) -> "Tensor4D":
        rng = np.random.default_rng(seed)
        return cls(
            rng.standard_normal(desc.physical_shape, dtype=_FLOAT), desc
        )

    # -- views and conversions -------------------------------------------
    @property
    def layout(self) -> DataLayout:
        return self.desc.layout

    def as_nchw(self) -> np.ndarray:
        """Logical (N, C, H, W) view of the data (no copy when possible)."""
        return self.data.transpose(NCHW.permutation_from(self.layout))

    def to_layout(self, layout: DataLayout) -> "Tensor4D":
        """Relayout into ``layout`` (copies unless already there)."""
        if layout == self.layout:
            return self
        perm = layout.permutation_from(self.layout)
        physical = np.ascontiguousarray(self.data.transpose(perm))
        return Tensor4D(physical, self.desc.with_layout(layout))

    def allclose(self, other: "Tensor4D", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """Logical equality regardless of storage layout."""
        return bool(
            self.desc.dims == other.desc.dims
            and np.allclose(self.as_nchw(), other.as_nchw(), rtol=rtol, atol=atol)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        n, c, h, w = self.desc.dims
        return f"Tensor4D(N={n}, C={c}, H={h}, W={w}, layout={self.layout})"


def make_input(
    n: int, c: int, h: int, w: int, layout: DataLayout = CHWN, seed: int = 0
) -> Tensor4D:
    """Synthetic input tensor with the paper's Table-1 shapes.

    Memory behaviour depends only on shape and layout, so seeded Gaussian
    noise stands in for the image datasets (see DESIGN.md substitutions).
    """
    return Tensor4D.random(TensorDesc(n, c, h, w, layout), seed=seed)
