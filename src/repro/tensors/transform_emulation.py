"""Executable emulations of the paper's transformation kernels (Fig. 7).

The kernel *models* in :mod:`repro.tensors.transform_kernels` predict cost;
these functions execute the same algorithms — with the paper's exact thread
indexing — so the test suite can prove the published code computes a
correct CHWN -> NCHW transposition:

* :func:`naive_transform_emulated` evaluates Fig. 7a's index expressions
  ``out[(((tx*gridDim.z+bz)*gridDim.y+by)*gridDim.x)+bx] =
  in[(((bz*gridDim.y+by)*gridDim.x)+bx)*blockDim.x+tx]`` for every
  (block, thread) coordinate, vectorized;
* :func:`tiled_transform_emulated` runs the Opt1/Opt2 structure: flatten
  4-D to 2-D ([C*H*W][N] -> [N][C*H*W]), stage 32x32 tiles through a padded
  scratch "shared memory" array, and write back transposed — including the
  float2 pairing of the vectorized variant.
"""

from __future__ import annotations

import numpy as np

from .layout import CHWN, NCHW, DataLayout
from .tensor import Tensor4D

_F = np.float32
TILE = 32


def _require_chwn_to_nchw(tensor: Tensor4D, target: DataLayout) -> None:
    if tensor.layout != CHWN or target != NCHW:
        raise ValueError(
            "the Fig. 7 kernels implement the CHWN -> NCHW transposition; "
            f"got {tensor.layout} -> {target}"
        )


def naive_transform_emulated(tensor: Tensor4D, target: DataLayout = NCHW) -> Tensor4D:
    """Fig. 7a, executed: one thread per element, 4-D thread hierarchy.

    Thread geometry mirrors the listing: ``blockDim.x = N`` (tx walks the
    batch), ``grid = (W, H, C)`` (bx, by, bz).
    """
    _require_chwn_to_nchw(tensor, target)
    n, c, h, w = tensor.desc.dims
    flat_in = tensor.data.reshape(-1)  # CHWN storage order
    out = np.empty(n * c * h * w, dtype=_F)

    # Vectorized evaluation of the listing's two index expressions.
    tx = np.arange(n)  # threadIdx.x
    bx = np.arange(w)[:, None]  # blockIdx.x
    by = np.arange(h)[:, None, None]  # blockIdx.y
    bz = np.arange(c)[:, None, None, None]  # blockIdx.z
    grid_x, grid_y, grid_z = w, h, c
    in_idx = (((bz * grid_y + by) * grid_x) + bx) * n + tx
    out_idx = ((tx * grid_z + bz) * grid_y + by) * grid_x + bx
    out[out_idx.reshape(-1)] = flat_in[in_idx.reshape(-1)]
    return Tensor4D(out.reshape(NCHW.shape_of(n, c, h, w)), tensor.desc.with_layout(NCHW))


def tiled_transform_emulated(
    tensor: Tensor4D, target: DataLayout = NCHW, vectorized: bool = False
) -> Tensor4D:
    """Fig. 7b, executed: flatten to 2-D, transpose 32x32 tiles through a
    padded scratch array.

    ``vectorized=True`` emulates the float2 variant: lanes move pairs of
    consecutive N-elements through the tile, so the scratch holds 2-wide
    vectors and each write-back scatters two rows (lines 16-24 of the
    listing).  Requires N to be a multiple of 64, like the paper's kernel.
    """
    _require_chwn_to_nchw(tensor, target)
    n, c, h, w = tensor.desc.dims
    rows = c * h * w  # D2_H: the merged CHW dimension
    cols = n  # D2_W: the batch dimension
    if vectorized and n % 64:
        raise ValueError("the vectorized kernel requires N to be a multiple of 64")

    src = tensor.data.reshape(rows, cols)  # [C*H*W][N]
    dst = np.empty((cols, rows), dtype=_F)  # [N][C*H*W]

    if not vectorized:
        # Padded shared tile: TILE x (TILE + 1) floats.
        sh = np.zeros((TILE, TILE + 1), dtype=_F)
        for r0 in range(0, rows, TILE):
            r1 = min(r0 + TILE, rows)
            for c0 in range(0, cols, TILE):
                c1 = min(c0 + TILE, cols)
                sh[: r1 - r0, : c1 - c0] = src[r0:r1, c0:c1]
                dst[c0:c1, r0:r1] = sh[: r1 - r0, : c1 - c0].T
        return Tensor4D(
            dst.reshape(NCHW.shape_of(n, c, h, w)), tensor.desc.with_layout(NCHW)
        )

    # float2 variant: pair consecutive batch elements; the tile is
    # TILE x (TILE + 1) float2 (last-dim axis 2 holds .x/.y).
    paired = src.reshape(rows, cols // 2, 2)
    sh2 = np.zeros((TILE, TILE + 1, 2), dtype=_F)
    pair_cols = cols // 2
    for r0 in range(0, rows, TILE):
        r1 = min(r0 + TILE, rows)
        for p0 in range(0, pair_cols, TILE):
            p1 = min(p0 + TILE, pair_cols)
            sh2[: r1 - r0, : p1 - p0] = paired[r0:r1, p0:p1]
            tile = sh2[: r1 - r0, : p1 - p0]
            # Write-back scatters each float2 into two consecutive output
            # rows (the listing's out[2*ty...] / out[2*ty+1...] pair).
            dst[2 * p0 : 2 * p1 : 2, r0:r1] = tile[:, :, 0].T
            dst[2 * p0 + 1 : 2 * p1 : 2, r0:r1] = tile[:, :, 1].T
    return Tensor4D(
        dst.reshape(NCHW.shape_of(n, c, h, w)), tensor.desc.with_layout(NCHW)
    )
