"""Layout-aware 4-D tensor substrate: layouts, tensors, and relayout kernels."""

from .layout import (
    ALL_LAYOUTS,
    CHWN,
    HWCN,
    NCHW,
    NHWC,
    DataLayout,
    parse_layout,
)
from .tensor import Tensor4D, TensorDesc, make_input
from .transform import (
    TransformCost,
    TransposeGroups,
    relayout_linear_indices,
    transform,
    transform_cost,
    transpose_groups,
)
from .transform_kernels import (
    NaiveTransformKernel,
    TiledTransformKernel,
    VectorTransformKernel,
    make_transform_kernel,
    transform_stats,
    transform_time_ms,
)

__all__ = [
    "ALL_LAYOUTS",
    "CHWN",
    "HWCN",
    "NCHW",
    "NHWC",
    "DataLayout",
    "NaiveTransformKernel",
    "Tensor4D",
    "TensorDesc",
    "TiledTransformKernel",
    "TransformCost",
    "TransposeGroups",
    "VectorTransformKernel",
    "make_input",
    "make_transform_kernel",
    "parse_layout",
    "relayout_linear_indices",
    "transform",
    "transform_cost",
    "transform_stats",
    "transform_time_ms",
    "transpose_groups",
]
