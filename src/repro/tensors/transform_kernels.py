"""GPU kernel models for the 4-D layout transformation (paper Fig. 7).

Three implementations, matching the paper's progression:

* :class:`NaiveTransformKernel` — Fig. 7a: a thread per element reading the
  source in storage order and writing with a long stride.  The traced
  coalescing unit shows ~1 transaction per element on the store side plus
  write-allocate fills, which is why the naive kernel manages only tens of
  GB/s.
* :class:`TiledTransformKernel` (Transform-Opt1) — flatten the 4-D
  permutation to a (batched) 2-D transpose (C, H, W keep their relative
  order between NCHW and CHWN), stage 32x32 tiles through padded shared
  memory so both global directions are coalesced.
* :class:`VectorTransformKernel` (Transform-Opt2) — additionally vectorize
  with float2 (8-byte shared-memory mode), applicable when the merged
  unit-stride group is at least 64 wide (the paper applies it when N >= 64).
"""

from __future__ import annotations

from math import ceil

import numpy as np

from ..gpusim.coalescing import analyze_warps
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import KernelModel, LaunchConfig, MemoryProfile
from ..gpusim.timing import KernelStats
from ..gpusim.trace import sample_indices
from .layout import DataLayout
from .tensor import TensorDesc
from .transform import TransposeGroups, relayout_linear_indices, transpose_groups

_ITEM = 4  # float32


class _TransformKernelBase(KernelModel):
    """Common plumbing: a relayout moves every element once, no FLOPs."""

    def __init__(self, desc: TensorDesc, target: DataLayout) -> None:
        if target == desc.layout:
            raise ValueError(f"source and target layout are both {target}")
        self.desc = desc
        self.target = target

    def flop_count(self) -> float:
        return 0.0

    def workspace_bytes(self) -> float:
        # Destination buffer; freed immediately after the transform
        # completes (Section VI.A).
        return float(self.desc.nbytes)


class NaiveTransformKernel(_TransformKernelBase):
    """Fig. 7a: one thread per element, un-coalesced strided stores."""

    name = "transform-naive"

    def __init__(
        self, desc: TensorDesc, target: DataLayout, max_sample_warps: int = 2048
    ) -> None:
        super().__init__(desc, target)
        self.max_sample_warps = max_sample_warps

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        lowest_extent = self.desc.physical_shape[-1]
        block_x = min(max(lowest_extent, device.warp_size), 256)
        grid_x = ceil(self.desc.size / block_x)
        return LaunchConfig(grid=(grid_x, 1, 1), block=(block_x, 1, 1), regs_per_thread=16)

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        size = self.desc.size
        nbytes = float(self.desc.nbytes)
        warp = device.warp_size
        n_warps = ceil(size / warp)
        sampled = sample_indices(n_warps, self.max_sample_warps)
        lanes = np.arange(warp, dtype=np.int64)
        thread_ids = sampled[:, None] * warp + lanes
        valid = thread_ids < size
        dst_idx = np.full(thread_ids.shape, -1, dtype=np.int64)
        dst_idx[valid] = relayout_linear_indices(
            self.desc, self.target, thread_ids[valid]
        )
        store_addr = np.where(valid, dst_idx * _ITEM, np.int64(-1))
        report = analyze_warps(store_addr, device, access_bytes=_ITEM)
        scale = n_warps / len(sampled)
        store_transactions = report.transactions * scale
        store_bytes = nbytes
        # Partial-line stores trigger write-allocate fills from DRAM.  The
        # concurrently-resident warps write to segments spread across the
        # whole destination, so the fills get no L2 gathering (working set
        # far exceeds L2) — this is the dominant cost of the naive kernel.
        coverage = min(1.0, store_bytes / max(store_transactions * 32.0, 1.0))
        write_allocate = store_transactions * (1.0 - coverage)
        return MemoryProfile(
            load_bytes=nbytes,
            store_bytes=store_bytes,
            load_transactions=nbytes / 32.0 + write_allocate,
            store_transactions=store_transactions,
            l2_hit_rate=0.0,
            access_bytes=_ITEM,
        )


class _TiledBase(_TransformKernelBase):
    """Shared logic for the tiled (Opt1/Opt2) kernels."""

    tile: int = 32

    def __init__(self, desc: TensorDesc, target: DataLayout) -> None:
        super().__init__(desc, target)
        groups = transpose_groups(desc.layout, target, desc.dims)
        if groups is None:
            raise ValueError(
                f"{desc.layout} -> {target} is not a batched 2-D transpose; "
                "use NaiveTransformKernel"
            )
        self.groups: TransposeGroups = groups

    def _tile_inflation(self) -> float:
        """Transaction inflation from partially-filled edge tiles."""
        g = self.groups
        tiles = ceil(g.rows / self.tile) * ceil(g.cols / self.tile) * g.batch
        active = g.rows * g.cols * g.batch / (tiles * self.tile * self.tile)
        return 1.0 / active

    def _grid(self) -> tuple[int, int, int]:
        g = self.groups
        return (ceil(g.cols / self.tile), ceil(g.rows / self.tile), g.batch)


class TiledTransformKernel(_TiledBase):
    """Transform-Opt1: flatten + padded shared-memory tile transpose."""

    name = "transform-opt1"

    def __init__(
        self, desc: TensorDesc, target: DataLayout, padded: bool = True
    ) -> None:
        super().__init__(desc, target)
        #: padding the tile row (``sh[C][33]``) removes bank conflicts; the
        #: unpadded variant is kept for the ablation benchmark.
        self.padded = padded

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        pitch = self.tile + (1 if self.padded else 0)
        smem = self.tile * pitch * _ITEM
        return LaunchConfig(
            grid=self._grid(), block=(32, 8, 1), regs_per_thread=24, smem_per_block=smem
        )

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        nbytes = float(self.desc.nbytes)
        inflation = self._tile_inflation()
        conflict = 1.0 if self.padded else float(device.smem_banks)
        return MemoryProfile(
            load_bytes=nbytes,
            store_bytes=nbytes,
            load_transactions=nbytes / 32.0 * inflation,
            store_transactions=nbytes / 32.0 * inflation,
            smem_conflict_degree=conflict,
            access_bytes=_ITEM,
        )


class VectorTransformKernel(_TiledBase):
    """Transform-Opt2: Opt1 plus float2 vectorization (8-byte smem mode)."""

    name = "transform-opt2"
    #: the paper enables vectorization when the batch dimension N (the
    #: merged unit-stride group) is at least this wide
    min_vector_extent = 64

    def __init__(self, desc: TensorDesc, target: DataLayout) -> None:
        super().__init__(desc, target)
        if self.groups.cols < self.min_vector_extent:
            raise ValueError(
                f"vectorized transform needs a unit-stride group >= "
                f"{self.min_vector_extent} (got {self.groups.cols}); "
                "fall back to TiledTransformKernel"
            )

    def launch_config(self, device: DeviceSpec) -> LaunchConfig:
        smem = self.tile * (self.tile + 1) * 8  # float2 tile, padded
        return LaunchConfig(
            grid=self._grid(), block=(32, 16, 1), regs_per_thread=28, smem_per_block=smem
        )

    def memory_profile(self, device: DeviceSpec) -> MemoryProfile:
        nbytes = float(self.desc.nbytes)
        inflation = self._tile_inflation()
        return MemoryProfile(
            load_bytes=nbytes,
            store_bytes=nbytes,
            load_transactions=nbytes / 32.0 * inflation,
            store_transactions=nbytes / 32.0 * inflation,
            access_bytes=8,
        )


def make_transform_kernel(
    desc: TensorDesc, target: DataLayout, method: str = "auto"
) -> KernelModel:
    """Pick a transformation kernel.

    ``auto`` mirrors the paper: vectorized tiles when the unit-stride group
    allows it, plain tiles when the permutation flattens to a 2-D transpose,
    the naive kernel otherwise.
    """
    if method == "naive":
        return NaiveTransformKernel(desc, target)
    if method == "opt1":
        return TiledTransformKernel(desc, target)
    if method == "opt2":
        return VectorTransformKernel(desc, target)
    if method != "auto":
        raise ValueError(f"unknown transform method {method!r}")
    groups = transpose_groups(desc.layout, target, desc.dims)
    if groups is None:
        return NaiveTransformKernel(desc, target)
    if groups.cols >= VectorTransformKernel.min_vector_extent:
        return VectorTransformKernel(desc, target)
    return TiledTransformKernel(desc, target)


def transform_stats(
    device: DeviceSpec, desc: TensorDesc, target: DataLayout, method: str = "auto"
) -> KernelStats:
    """Simulate one relayout and return its kernel statistics.

    Served from the device's shared simulation session: the layout planner
    asks for the same boundary transforms many times per dynamic program.
    """
    from ..gpusim.session import default_context

    kernel = make_transform_kernel(desc, target, method)
    return default_context(device).run(kernel, check_memory=False)


def transform_time_ms(
    device: DeviceSpec, desc: TensorDesc, target: DataLayout, method: str = "auto"
) -> float:
    """Modelled wall time of a relayout in milliseconds."""
    if target == desc.layout:
        return 0.0
    return transform_stats(device, desc, target, method).time_ms
